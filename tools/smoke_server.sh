#!/usr/bin/env bash
# smoke_server.sh - end-to-end exercise of the qualsd analysis server.
#
#   smoke_server.sh <qualsd-binary> <qualcc-binary> <programs-dir>
#
# Asserts the serving guarantees (docs/SERVER.md) over the real binary:
# (a) warm answers are byte-identical to cold ones -- within one process
# (in-memory cache), across a restart (--cache-dir spill), and at every
# worker count; (b) the cache is genuinely hit, visible both in the `stats`
# response and in --metrics=json counters, which qualsd routes to *stderr*
# so stdout stays pure NDJSON responses (JSON validation skipped without
# python3); (c) a `shutdown` request stops the daemon with exit 0 and
# nothing after its response; (d) a served analyze matches what qualcc
# prints for the same file; (e) the editor loop: analyze a buffer, edit one
# function, analyze-delta the edit -- the response is byte-identical to a
# cold analyze of the edited buffer on a fresh daemon, and the stats/metrics
# prove summaries were actually replayed (docs/INCREMENTAL.md); (f) the
# telemetry surface (docs/OBSERVABILITY.md): under -j4 with --request-log,
# the `metrics` response carries latency histograms whose buckets sum to
# the request count, the `stats` latency block agrees, the log has exactly
# one well-formed event per request with seq 1..N, and stdout still parses
# line-for-line as responses; (g) the socket transport (--listen): the
# same request stream over a unix-domain socket is byte-identical to
# stdio, and a `shutdown` over a second connection stops the daemon with
# exit 0 (skipped without python3, which drives the socket client). Wired
# into ctest as cli.smoke_server by tools/CMakeLists.txt.

set -euo pipefail

if [ $# -ne 3 ]; then
    echo "usage: $0 <qualsd> <qualcc> <programs-dir>" >&2
    exit 2
fi

QUALSD=$1
QUALCC=$2
PROGRAMS=$3
FAILED=0

WORKDIR=$(mktemp -d)
trap 'rm -rf "$WORKDIR"' EXIT

# --- request stream over the example corpus ------------------------------
REQS="$WORKDIR/requests.ndjson"
: >"$REQS"
ID=0
NREQ=0
for F in "$PROGRAMS"/*.c "$PROGRAMS"/*.q; do
    [ -e "$F" ] || continue
    case "$F" in
        *.q) LANG_FIELD=',"language":"lambda"' ;;
        *)   LANG_FIELD='' ;;
    esac
    ID=$((ID + 1))
    printf '{"id":%d,"method":"analyze","params":{"path":"%s"%s}}\n' \
        "$ID" "$F" "$LANG_FIELD" >>"$REQS"
    NREQ=$((NREQ + 1))
done
if [ "$NREQ" -lt 3 ]; then
    echo "FAIL: need at least three example programs in $PROGRAMS" >&2
    exit 2
fi

# --- (a1) in-process warm hits: same stream twice, one daemon ------------
cat "$REQS" "$REQS" >"$WORKDIR/doubled.ndjson"
STATUS=0
"$QUALSD" <"$WORKDIR/doubled.ndjson" >"$WORKDIR/doubled.out" || STATUS=$?
if [ "$STATUS" -ne 0 ]; then
    echo "FAIL: qualsd exited $STATUS on end of input" >&2
    FAILED=1
fi
head -n "$NREQ" "$WORKDIR/doubled.out" >"$WORKDIR/cold.out"
tail -n "$NREQ" "$WORKDIR/doubled.out" >"$WORKDIR/warm.out"
if ! cmp -s "$WORKDIR/cold.out" "$WORKDIR/warm.out"; then
    echo "FAIL: warm responses differ from cold (in-memory cache)" >&2
    diff "$WORKDIR/cold.out" "$WORKDIR/warm.out" | head >&2 || true
    FAILED=1
fi

# --- (a2) restart-warm via --cache-dir spill -----------------------------
"$QUALSD" --cache-dir="$WORKDIR/spill" <"$REQS" >"$WORKDIR/run1.out"
"$QUALSD" --cache-dir="$WORKDIR/spill" <"$REQS" >"$WORKDIR/run2.out"
if ! cmp -s "$WORKDIR/run1.out" "$WORKDIR/run2.out"; then
    echo "FAIL: responses differ across a --cache-dir restart" >&2
    FAILED=1
fi
if ! ls "$WORKDIR/spill"/*.qres >/dev/null 2>&1; then
    echo "FAIL: --cache-dir produced no spill entries" >&2
    FAILED=1
fi

# --- (a3) worker-count determinism (fresh caches) ------------------------
"$QUALSD" -j4 <"$REQS" >"$WORKDIR/j4.out"
if ! cmp -s "$WORKDIR/run1.out" "$WORKDIR/j4.out"; then
    echo "FAIL: -j4 responses differ from -j1" >&2
    FAILED=1
fi

# --- (b) cache hits visible in stats and metrics -------------------------
{
    cat "$WORKDIR/doubled.ndjson"
    STATS_ID=$((2 * NREQ + 1))
    printf '{"id":%d,"method":"stats"}\n' "$STATS_ID"
    printf '{"id":%d,"method":"shutdown"}\n' "$((STATS_ID + 1))"
} >"$WORKDIR/metered.ndjson"
STATUS=0
"$QUALSD" --metrics=json <"$WORKDIR/metered.ndjson" \
    >"$WORKDIR/metered.out" 2>"$WORKDIR/metered.err" || STATUS=$?
# --- (c) clean shutdown exit ---------------------------------------------
if [ "$STATUS" -ne 0 ]; then
    echo "FAIL: qualsd exited $STATUS after shutdown request" >&2
    cat "$WORKDIR/metered.err" >&2
    FAILED=1
fi
RESPONSES=$((2 * NREQ + 2))
if ! sed -n "${RESPONSES}p" "$WORKDIR/metered.out" \
        | grep -q '"ok":true'; then
    echo "FAIL: shutdown request was not acknowledged" >&2
    FAILED=1
fi

if command -v python3 >/dev/null 2>&1; then
    python3 - "$WORKDIR/metered.out" "$WORKDIR/metered.err" "$NREQ" \
        <<'PYEOF' || FAILED=1
import json, sys

path, errpath, nreq = sys.argv[1], sys.argv[2], int(sys.argv[3])
lines = open(path).read().splitlines()
# stdout is pure NDJSON responses: one per request, nothing else.
assert len(lines) == 2 * nreq + 2, len(lines)
for line in lines:
    resp = json.loads(line)
    assert "id" in resp and "ok" in resp, resp
responses = lines
# The metrics report goes to stderr, keeping stdout machine-parseable.
errlines = open(errpath).read().splitlines()
start = next(i for i, l in enumerate(errlines) if l.startswith('{"counters"'))
metrics = json.loads("\n".join(errlines[start:]))

stats = json.loads(responses[2 * nreq])
assert stats["ok"], stats
cache = stats["cache"]
# Second pass over the corpus was answered entirely from cache.
assert cache["hits"] == nreq, cache
assert cache["misses"] == nreq, cache
assert cache["entries"] == nreq, cache
assert stats["requests"] == 2 * nreq + 1, stats

counters = metrics["counters"]
assert counters.get("cache.hits") == nreq, counters
assert counters.get("cache.misses") == nreq, counters
assert counters.get("server.requests") == 2 * nreq + 2, counters
assert counters.get("server.errors", 0) == 0, counters
PYEOF
else
    echo "NOTE: python3 unavailable; metrics JSON validation skipped" >&2
fi

# --- (d) served bytes match the batch tool -------------------------------
# qualsd omits the timing banner, so compare against qualcc --quiet, whose
# report is exactly the deterministic remainder.
CFILE=$(ls "$PROGRAMS"/*.c | head -1)
"$QUALCC" --quiet "$CFILE" >"$WORKDIR/cc.out" 2>/dev/null || true
printf '{"id":1,"method":"analyze","params":{"path":"%s"}}\n' "$CFILE" \
    | "$QUALSD" >"$WORKDIR/sd.out"
if command -v python3 >/dev/null 2>&1; then
    python3 - "$WORKDIR/sd.out" "$WORKDIR/cc.out" <<'PYEOF' || FAILED=1
import json, sys

resp = json.loads(open(sys.argv[1]).read())
expected = open(sys.argv[2]).read()
assert resp["ok"], resp
assert resp["stdout"] == expected, (resp["stdout"], expected)
PYEOF
fi

# --- (e) edit loop: analyze, edit one function, analyze-delta ------------
# Inline sources, as an editor integration would send buffers. V2 edits one
# function body (leaf gains a write); everything else is unchanged.
V1='int id(int *p) { return *p; }\nint use(int *q) { return id(q); }\nint leaf(int *r) { return *r; }\n'
V2='int id(int *p) { return *p; }\nint use(int *q) { return id(q); }\nint leaf(int *r) { *r = 1; return *r; }\n'
{
    printf '{"id":1,"method":"analyze","params":{"name":"edit.c","source":"%s"}}\n' "$V1"
    printf '{"id":2,"method":"analyze-delta","params":{"name":"edit.c","source":"%s"}}\n' "$V2"
    printf '{"id":3,"method":"stats"}\n'
    printf '{"id":4,"method":"shutdown"}\n'
} >"$WORKDIR/editloop.ndjson"
STATUS=0
"$QUALSD" --metrics=json <"$WORKDIR/editloop.ndjson" \
    >"$WORKDIR/editloop.out" 2>"$WORKDIR/editloop.err" || STATUS=$?
if [ "$STATUS" -ne 0 ]; then
    echo "FAIL: qualsd exited $STATUS on the edit-loop stream" >&2
    FAILED=1
fi
# Cold reference: a fresh daemon analyzes the edited buffer under the same
# request id, so the whole response line must match byte for byte.
{
    printf '{"id":2,"method":"analyze","params":{"name":"edit.c","source":"%s"}}\n' "$V2"
    printf '{"id":3,"method":"shutdown"}\n'
} >"$WORKDIR/editcold.ndjson"
"$QUALSD" <"$WORKDIR/editcold.ndjson" >"$WORKDIR/editcold.out"
sed -n '2p' "$WORKDIR/editloop.out" >"$WORKDIR/delta_line.out"
sed -n '1p' "$WORKDIR/editcold.out" >"$WORKDIR/cold_line.out"
if ! cmp -s "$WORKDIR/delta_line.out" "$WORKDIR/cold_line.out"; then
    echo "FAIL: analyze-delta response differs from cold analyze" >&2
    diff "$WORKDIR/delta_line.out" "$WORKDIR/cold_line.out" >&2 || true
    FAILED=1
fi
if command -v python3 >/dev/null 2>&1; then
    python3 - "$WORKDIR/editloop.out" "$WORKDIR/editloop.err" \
        <<'PYEOF' || FAILED=1
import json, sys

lines = open(sys.argv[1]).read().splitlines()
assert len(lines) == 4, lines  # Responses only; metrics live on stderr.
stats = json.loads(lines[2])
delta = stats["delta"]
# The edit was served incrementally: the snapshot from request 1 was found
# and clean summaries were genuinely replayed, not recomputed.
assert delta["snapshot_hits"] == 1, delta
assert delta["incremental"] == 1, delta
assert delta["full"] == 0, delta
assert delta["reused"] > 0, delta
errlines = open(sys.argv[2]).read().splitlines()
start = next(i for i, l in enumerate(errlines) if l.startswith('{"counters"'))
metrics = json.loads("\n".join(errlines[start:]))
counters = metrics["counters"]
assert counters.get("server.delta.requests") == 1, counters
assert counters.get("server.delta.incremental") == 1, counters
assert counters.get("server.delta.reused", 0) > 0, counters
PYEOF
fi

# --- (f) telemetry: metrics request, stats latency, request log ----------
# The parallel daemon with the full telemetry surface on: every request
# must land in the histograms, the log, and nowhere near stdout's bytes.
{
    cat "$WORKDIR/doubled.ndjson"
    METRICS_ID=$((2 * NREQ + 1))
    printf '{"id":%d,"method":"metrics"}\n' "$METRICS_ID"
    printf '{"id":%d,"method":"stats"}\n' "$((METRICS_ID + 1))"
    printf '{"id":%d,"method":"shutdown"}\n' "$((METRICS_ID + 2))"
} >"$WORKDIR/telemetry.ndjson"
STATUS=0
"$QUALSD" -j4 --request-log="$WORKDIR/req.log" --slow-ms=60000 \
    <"$WORKDIR/telemetry.ndjson" >"$WORKDIR/telemetry.out" \
    2>"$WORKDIR/telemetry.err" || STATUS=$?
if [ "$STATUS" -ne 0 ]; then
    echo "FAIL: qualsd exited $STATUS on the telemetry stream" >&2
    cat "$WORKDIR/telemetry.err" >&2
    FAILED=1
fi
if command -v python3 >/dev/null 2>&1; then
    python3 - "$WORKDIR/telemetry.out" "$WORKDIR/req.log" "$NREQ" \
        <<'PYEOF' || FAILED=1
import json, sys

out, logpath, nreq = sys.argv[1], sys.argv[2], int(sys.argv[3])
total = 2 * nreq + 3
lines = open(out).read().splitlines()
# stdout purity at -j4: exactly one JSON response per request, in request
# order (the doubled corpus reuses ids 1..N for its second pass).
expected_ids = list(range(1, nreq + 1)) * 2 + [total - 2, total - 1, total]
assert len(lines) == total, (len(lines), total)
for i, line in enumerate(lines):
    resp = json.loads(line)
    assert resp["id"] == expected_ids[i] and "ok" in resp, resp

# The metrics response: live histograms; analyze buckets sum to the
# number of analyzes served so far.
metrics = json.loads(lines[2 * nreq])["metrics"]
lat = metrics["histograms"]["server.latency.analyze"]
assert lat["count"] == 2 * nreq, lat
assert sum(c for _, _, c in lat["buckets"]) == lat["count"], lat
assert lat["min"] <= lat["p50"] <= lat["p99"] <= lat["max"], lat
assert metrics["histograms"]["server.queue_wait"]["count"] == 2 * nreq

# The stats latency block agrees, and has seen the metrics request too.
latency = json.loads(lines[2 * nreq + 1])["latency"]
assert latency["analyze"]["count"] == 2 * nreq, latency
assert latency["metrics"]["count"] == 1, latency

# One well-formed log event per request; seq restores arrival order even
# though -j4 writes in completion order. --slow-ms=60000 tags nothing.
events = [json.loads(l) for l in open(logpath).read().splitlines()]
assert len(events) == total, len(events)
assert sorted(e["seq"] for e in events) == list(range(1, total + 1))
for e in events:
    assert e["ok"] and "service_us" in e and "bytes_out" in e, e
    assert "slow" not in e, e
methods = {e["method"] for e in events}
assert methods == {"analyze", "metrics", "stats", "shutdown"}, methods
assert sum(e["method"] == "analyze" for e in events) == 2 * nreq
PYEOF
fi

# --- (g) socket transport: socket bytes == stdio bytes -------------------
# The same request stream over --listen (unix-domain socket, -j4) must be
# byte-identical to the stdio daemon's responses, and a shutdown request
# from a second connection must stop the whole daemon with exit 0.
if command -v python3 >/dev/null 2>&1; then
    SOCK="$WORKDIR/qualsd.sock"
    "$QUALSD" -j4 --listen="$SOCK" 2>"$WORKDIR/socket.err" &
    SDPID=$!
    SEEN_SOCK=0
    for _ in $(seq 1 100); do
        [ -S "$SOCK" ] && { SEEN_SOCK=1; break; }
        sleep 0.05
    done
    if [ "$SEEN_SOCK" -ne 1 ]; then
        echo "FAIL: qualsd --listen never created $SOCK" >&2
        cat "$WORKDIR/socket.err" >&2
        kill "$SDPID" 2>/dev/null || true
        FAILED=1
    else
        python3 - "$SOCK" "$REQS" "$WORKDIR/socket.out" <<'PYEOF' || FAILED=1
import socket, sys

sock_path, reqs, outpath = sys.argv[1:4]
data = open(reqs, "rb").read()
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(sock_path)
s.sendall(data)
s.shutdown(socket.SHUT_WR)  # Half-close: EOF ends the session cleanly.
buf = b""
while True:
    chunk = s.recv(65536)
    if not chunk:
        break
    buf += chunk
open(outpath, "wb").write(buf)
PYEOF
        "$QUALSD" -j4 <"$REQS" >"$WORKDIR/stdio_ref.out"
        if ! cmp -s "$WORKDIR/socket.out" "$WORKDIR/stdio_ref.out"; then
            echo "FAIL: socket responses differ from stdio" >&2
            diff "$WORKDIR/socket.out" "$WORKDIR/stdio_ref.out" | head >&2 \
                || true
            FAILED=1
        fi
        python3 - "$SOCK" <<'PYEOF' || FAILED=1
import socket, sys

s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(sys.argv[1])
s.sendall(b'{"id":1,"method":"shutdown"}\n')
resp = b""
while b"\n" not in resp:
    chunk = s.recv(4096)
    if not chunk:
        break
    resp += chunk
assert resp == b'{"id":1,"ok":true}\n', resp
PYEOF
        STATUS=0
        wait "$SDPID" || STATUS=$?
        if [ "$STATUS" -ne 0 ]; then
            echo "FAIL: qualsd --listen exited $STATUS after shutdown" >&2
            cat "$WORKDIR/socket.err" >&2
            FAILED=1
        fi
    fi
else
    echo "NOTE: python3 unavailable; socket scenario skipped" >&2
fi

exit "$FAILED"

#!/usr/bin/env bash
# check_docs.sh - documentation hygiene, wired into ctest as cli.check_docs.
#
#   check_docs.sh <repo-root>
#
# Asserts two invariants that keep the doc set navigable as it grows:
# (1) every file under docs/ is referenced from README.md (the doc index in
# its "Documentation map" section), so no page is orphaned; (2) every
# relative markdown link in README.md and docs/*.md resolves to an existing
# file (anchors stripped; http(s)/mailto links skipped), so renames and
# deletions cannot silently strand readers.

set -u

ROOT=${1:?usage: check_docs.sh <repo-root>}
FAILED=0

# --- (1) every docs/ page is indexed from README.md ----------------------
for DOC in "$ROOT"/docs/*.md; do
    [ -e "$DOC" ] || continue
    NAME="docs/$(basename "$DOC")"
    if ! grep -q "$NAME" "$ROOT/README.md"; then
        echo "FAIL: $NAME is not referenced from README.md" >&2
        FAILED=1
    fi
done

# --- (2) relative markdown links resolve ---------------------------------
for MD in "$ROOT"/README.md "$ROOT"/docs/*.md; do
    [ -e "$MD" ] || continue
    DIR=$(dirname "$MD")
    # Markdown link targets: the (...) of ](...), one per line. Links in
    # these docs never contain spaces or nested parens.
    TARGETS=$(grep -o '](\([^)]*\))' "$MD" | sed 's/^](//; s/)$//') || true
    for T in $TARGETS; do
        T=${T%%#*}                      # Strip the anchor.
        [ -n "$T" ] || continue         # Pure-anchor link.
        case "$T" in
            http://*|https://*|mailto:*) continue ;;
        esac
        if [ ! -e "$DIR/$T" ]; then
            echo "FAIL: ${MD#"$ROOT"/}: broken link '$T'" >&2
            FAILED=1
        fi
    done
done

exit "$FAILED"

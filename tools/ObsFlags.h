//===- tools/ObsFlags.h - Shared observability CLI plumbing -----*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The --trace-out / --metrics flags shared by qualcc, qualcheck, and
/// qualgen. ObsSession parses the flags, switches the process-wide tracer
/// and metrics registry on, and flushes both on destruction -- so every
/// exit path of main() (including error paths, where a trace is most
/// interesting) still writes the trace file and prints the metrics report.
///
///   --trace-out=<file>   record Chrome trace events, write them to <file>
///   --metrics[=table|json]  print collected metrics on exit (default table)
///
/// The metrics report goes to stdout by default (the batch tools' smoke
/// scripts parse it there). A tool whose stdout is a machine protocol --
/// qualsd's NDJSON response stream -- must call setReportStream(stderr)
/// so telemetry can never interleave with protocol bytes.
///
/// See docs/OBSERVABILITY.md for the span/metric naming conventions and how
/// to load the trace in Perfetto.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_TOOLS_OBSFLAGS_H
#define QUALS_TOOLS_OBSFLAGS_H

#include "support/Metrics.h"
#include "support/Trace.h"

#include <cstdio>
#include <cstring>
#include <string>

namespace quals {

/// Observability flag state for one tool invocation; see the file comment.
class ObsSession {
public:
  /// Returns true (and consumes the flag) when \p Arg is an observability
  /// flag; prints to stderr and sets badFlag() on a malformed value.
  bool parseFlag(const char *Arg) {
    if (!std::strncmp(Arg, "--trace-out=", 12)) {
      TraceOut = Arg + 12;
      if (TraceOut.empty()) {
        std::fprintf(stderr, "--trace-out= requires a file name\n");
        Bad = true;
      }
      return true;
    }
    if (!std::strcmp(Arg, "--metrics")) {
      Metrics = MetricsMode::Table;
      return true;
    }
    if (!std::strncmp(Arg, "--metrics=", 10)) {
      const char *Mode = Arg + 10;
      if (!std::strcmp(Mode, "table"))
        Metrics = MetricsMode::Table;
      else if (!std::strcmp(Mode, "json"))
        Metrics = MetricsMode::Json;
      else {
        std::fprintf(stderr, "--metrics= wants 'table' or 'json', got '%s'\n",
                     Mode);
        Bad = true;
      }
      return true;
    }
    return false;
  }

  /// True if a recognized observability flag had a malformed value.
  bool badFlag() const { return Bad; }

  /// Redirects the exit-time metrics report (default stdout).
  void setReportStream(std::FILE *To) { Report = To; }

  /// Turns the requested sinks on; call once after flag parsing.
  void activate() {
    if (!TraceOut.empty())
      Tracer::instance().setEnabled(true);
    if (Metrics != MetricsMode::Off)
      MetricsRegistry::setCollecting(true);
  }

  /// Flushes on every exit path: writes the trace file and prints the
  /// metrics report to the report stream (stdout unless redirected).
  ~ObsSession() {
    if (!TraceOut.empty()) {
      Tracer::instance().setEnabled(false);
      if (!Tracer::instance().writeChromeJson(TraceOut))
        std::fprintf(stderr, "warning: cannot write trace to '%s'\n",
                     TraceOut.c_str());
    }
    if (Metrics == MetricsMode::Table)
      std::fputs(MetricsRegistry::global().renderTable().c_str(), Report);
    else if (Metrics == MetricsMode::Json)
      std::fputs(MetricsRegistry::global().renderJson().c_str(), Report);
  }

private:
  enum class MetricsMode { Off, Table, Json };

  std::string TraceOut;
  MetricsMode Metrics = MetricsMode::Off;
  std::FILE *Report = stdout;
  bool Bad = false;
};

} // namespace quals

#endif // QUALS_TOOLS_OBSFLAGS_H

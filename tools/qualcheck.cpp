//===- tools/qualcheck.cpp - Lambda-language qualifier checker -------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
//
// Checks and optionally runs programs in the paper's demonstration language
// (Figure 1 + references + qualifier annotations/assertions):
//
//   qualcheck [options] file.q
//
//   --mono   monomorphic qualifier inference (default: polymorphic)
//   --run    evaluate under the Figure 5 semantics after checking
//   --trace  with --run, print every reduction step
//   --stats  print a solver statistics table after the check
//   --trace-out=<file>  write a Chrome trace of the pipeline phases
//   --metrics[=table|json]  print per-phase metrics on exit
//   --quals  comma-separated qualifier spec, name[:neg] (default:
//            "const,nonzero:neg,dynamic,tainted")
//
// Exit status: 0 accepted, 1 front-end/type errors, 2 qualifier errors,
// 3 evaluation got stuck.
//
//===----------------------------------------------------------------------===//

#include "lambda/Eval.h"
#include "lambda/Parser.h"
#include "lambda/QualInfer.h"

#include "ObsFlags.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace quals;
using namespace quals::lambda;

static bool readFile(const char *Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

int main(int argc, char **argv) {
  bool Polymorphic = true;
  bool Run = false;
  bool Trace = false;
  bool PrintStats = false;
  const char *File = nullptr;
  std::string QualSpec = "const,nonzero:neg,dynamic,tainted";
  ObsSession Obs;

  for (int I = 1; I != argc; ++I) {
    if (!std::strcmp(argv[I], "--mono"))
      Polymorphic = false;
    else if (!std::strcmp(argv[I], "--run"))
      Run = true;
    else if (!std::strcmp(argv[I], "--trace"))
      Run = Trace = true;
    else if (!std::strcmp(argv[I], "--stats"))
      PrintStats = true;
    else if (!std::strcmp(argv[I], "--quals") && I + 1 < argc)
      QualSpec = argv[++I];
    else if (Obs.parseFlag(argv[I])) {
      if (Obs.badFlag())
        return 1;
    } else if (argv[I][0] == '-') {
      std::fprintf(stderr,
                   "usage: qualcheck [--mono] [--run] [--trace] [--stats] "
                   "[--trace-out=file] [--metrics[=table|json]] "
                   "[--quals spec] file.q\n");
      return std::strcmp(argv[I], "--help") ? 1 : 0;
    } else {
      File = argv[I];
    }
  }
  if (!File) {
    std::fprintf(stderr, "qualcheck: no input file\n");
    return 1;
  }
  Obs.activate();

  QualifierSet QS;
  QualifierId ConstQual = ~0u;
  {
    std::stringstream Spec(QualSpec);
    std::string Item;
    while (std::getline(Spec, Item, ',')) {
      bool Negative = false;
      size_t Colon = Item.find(':');
      if (Colon != std::string::npos) {
        Negative = Item.substr(Colon + 1) == "neg";
        Item = Item.substr(0, Colon);
      }
      if (Item.empty())
        continue;
      QualifierId Id = QS.add(
          Item, Negative ? Polarity::Negative : Polarity::Positive);
      if (Item == "const")
        ConstQual = Id;
    }
  }

  std::string Source;
  if (!readFile(File, Source)) {
    std::fprintf(stderr, "qualcheck: cannot read '%s'\n", File);
    return 1;
  }

  SourceManager SM;
  DiagnosticEngine Diags(SM);
  AstContext Ast;
  StringInterner Idents;
  const Expr *Program =
      parseString(SM, File, std::move(Source), QS, Ast, Idents, Diags);
  if (!Program) {
    std::fprintf(stderr, "%s", Diags.renderAll().c_str());
    return 1;
  }

  STyContext STys;
  ConstraintSystem Sys(QS);
  QualTypeFactory Factory;
  LambdaTypeCtors Ctors;
  QualInferOptions Options;
  Options.Polymorphic = Polymorphic;
  if (ConstQual != ~0u)
    Options.ConstQual = ConstQual;

  CheckResult Result = checkProgram(Program, QS, STys, Sys, Factory, Ctors,
                                    Diags, Options);
  if (!Result.StdTypeOk) {
    std::fprintf(stderr, "%s", Diags.renderAll().c_str());
    return 1;
  }
  std::printf("qualified type: %s\n",
              toString(QS, Result.Type, &Sys).c_str());
  if (PrintStats)
    std::printf("%s", renderSolverStats(Result.Stats).c_str());
  if (!Result.QualOk) {
    std::printf("qualifier check: REJECTED\n");
    for (const Violation &V : Result.Violations)
      std::printf("%s", Sys.explain(V).c_str());
    return 2;
  }
  std::printf("qualifier check: accepted (%s)\n",
              Polymorphic ? "polymorphic" : "monomorphic");

  if (Run) {
    Evaluator Ev(Ast, QS);
    unsigned StepNo = 0;
    Evaluator::StepObserver Observer;
    if (Trace)
      Observer = [&](const Expr *Term) {
        std::printf("  --> [%u] %s\n", ++StepNo,
                    toString(QS, Term).c_str());
      };
    EvalResult R = Ev.evaluate(Program, 100000, Observer);
    switch (R.Outcome) {
    case EvalOutcome::Value:
      std::printf("value: %s (%u steps)\n",
                  toString(QS, R.Result).c_str(), R.Steps);
      break;
    case EvalOutcome::Stuck:
      std::printf("STUCK after %u steps: %s\n", R.Steps,
                  R.StuckReason.c_str());
      return 3;
    case EvalOutcome::TimedOut:
      std::printf("step limit reached (possibly diverging)\n");
      break;
    }
  }
  return 0;
}

//===- tools/qualcheck.cpp - Lambda-language qualifier checker -------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
//
// Checks and optionally runs programs in the paper's demonstration language
// (Figure 1 + references + qualifier annotations/assertions):
//
//   qualcheck [options] file.q [file2.q ...] [@response-file]
//
//   --mono   monomorphic qualifier inference (default: polymorphic)
//   --run    evaluate under the Figure 5 semantics after checking
//   --trace  with --run, print every reduction step
//   --stats  print a solver statistics table after the check
//   -jN, --jobs N  analyze files on N pool workers (docs/PARALLEL.md);
//            output order and bytes are identical for every N
//   --trace-out=<file>  write a Chrome trace of the pipeline phases
//   --metrics[=table|json]  print per-phase metrics on exit
//   --quals  comma-separated qualifier spec, name[:neg] (default:
//            "const,nonzero:neg,dynamic,tainted")
//
// Each file is checked independently in an isolated context; with several
// files the per-file reports are emitted in input order under "== file =="
// banners. Exit status is the worst per-file status: 0 accepted, 1
// front-end/type errors, 2 qualifier errors, 3 evaluation got stuck.
//
//===----------------------------------------------------------------------===//

#include "lambda/Eval.h"
#include "lambda/Parser.h"
#include "lambda/QualInfer.h"

#include "BatchDriver.h"
#include "ToolFlags.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace quals;
using namespace quals::lambda;

static bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

namespace {

struct CheckOptions {
  bool Polymorphic = true;
  bool Run = false;
  bool Trace = false;
  bool PrintStats = false;
  std::string QualSpec = "const,nonzero:neg,dynamic,tainted";
  Limits Lim;
};

} // namespace

/// Checks one program in a fully isolated context (own qualifier set,
/// source manager, AST arena, interner, constraint system), buffering all
/// output into \p R. Runs on a batch pool worker at -jN.
static void checkOneFile(const std::string &Path, const CheckOptions &Opts,
                         batch::FileResult &R) {
  QualifierSet QS;
  QualifierId ConstQual = ~0u;
  {
    std::stringstream Spec(Opts.QualSpec);
    std::string Item;
    while (std::getline(Spec, Item, ',')) {
      bool Negative = false;
      size_t Colon = Item.find(':');
      if (Colon != std::string::npos) {
        Negative = Item.substr(Colon + 1) == "neg";
        Item = Item.substr(0, Colon);
      }
      if (Item.empty())
        continue;
      QualifierId Id =
          QS.add(Item, Negative ? Polarity::Negative : Polarity::Positive);
      if (Item == "const")
        ConstQual = Id;
    }
  }

  std::string Source;
  if (!readFile(Path, Source)) {
    batch::appendf(R.Err, "qualcheck: cannot read '%s'\n", Path.c_str());
    R.ExitCode = 1;
    return;
  }

  SourceManager SM;
  DiagnosticEngine Diags(SM, Opts.Lim);
  AstContext Ast;
  StringInterner Idents;
  const Expr *Program =
      parseString(SM, Path, std::move(Source), QS, Ast, Idents, Diags);
  if (!Program) {
    R.Err += Diags.renderAll();
    R.ExitCode = 1;
    return;
  }

  STyContext STys;
  SolverConfig SysConfig;
  SysConfig.MaxConstraints = Opts.Lim.MaxConstraints;
  ConstraintSystem Sys(QS, SysConfig);
  QualTypeFactory Factory;
  LambdaTypeCtors Ctors;
  QualInferOptions Options;
  Options.Polymorphic = Opts.Polymorphic;
  if (ConstQual != ~0u)
    Options.ConstQual = ConstQual;

  CheckResult Result =
      checkProgram(Program, QS, STys, Sys, Factory, Ctors, Diags, Options);
  if (!Result.StdTypeOk) {
    R.Err += Diags.renderAll();
    R.ExitCode = 1;
    return;
  }
  batch::appendf(R.Out, "qualified type: %s\n",
                 toString(QS, Result.Type, &Sys).c_str());
  if (Opts.PrintStats)
    R.Out += renderSolverStats(Result.Stats);
  if (!Result.QualOk) {
    R.Out += "qualifier check: REJECTED\n";
    for (const Violation &V : Result.Violations)
      R.Out += Sys.explain(V);
    R.ExitCode = 2;
    return;
  }
  batch::appendf(R.Out, "qualifier check: accepted (%s)\n",
                 Opts.Polymorphic ? "polymorphic" : "monomorphic");

  if (Opts.Run) {
    Evaluator Ev(Ast, QS);
    unsigned StepNo = 0;
    Evaluator::StepObserver Observer;
    if (Opts.Trace)
      Observer = [&](const Expr *Term) {
        batch::appendf(R.Out, "  --> [%u] %s\n", ++StepNo,
                       toString(QS, Term).c_str());
      };
    EvalResult Res = Ev.evaluate(Program, 100000, Observer);
    switch (Res.Outcome) {
    case EvalOutcome::Value:
      batch::appendf(R.Out, "value: %s (%u steps)\n",
                     toString(QS, Res.Result).c_str(), Res.Steps);
      break;
    case EvalOutcome::Stuck:
      batch::appendf(R.Out, "STUCK after %u steps: %s\n", Res.Steps,
                     Res.StuckReason.c_str());
      R.ExitCode = 3;
      break;
    case EvalOutcome::TimedOut:
      R.Out += "step limit reached (possibly diverging)\n";
      break;
    }
  }
}

static const char *kOptionsHelp =
    "  --mono        monomorphic qualifier inference (default: "
    "polymorphic)\n"
    "  --run         evaluate under the Figure 5 semantics after checking\n"
    "  --trace       with --run, print every reduction step\n"
    "  --stats       print a solver statistics table after the check\n"
    "  --quals spec  comma-separated qualifier spec, name[:neg]\n"
    "                (default: \"const,nonzero:neg,dynamic,tainted\")\n";

int main(int argc, char **argv) {
  CheckOptions Opts;
  std::vector<std::string> Files;
  ToolFlags Common("qualcheck", "file.q... [@response-file]", kOptionsHelp);

  for (int I = 1; I != argc; ++I) {
    std::string Error;
    if (Common.parseCommon(argc, argv, I)) {
      if (Common.exitNow())
        return Common.exitStatus();
    } else if (!std::strcmp(argv[I], "--mono"))
      Opts.Polymorphic = false;
    else if (!std::strcmp(argv[I], "--run"))
      Opts.Run = true;
    else if (!std::strcmp(argv[I], "--trace"))
      Opts.Run = Opts.Trace = true;
    else if (!std::strcmp(argv[I], "--stats"))
      Opts.PrintStats = true;
    else if (!std::strcmp(argv[I], "--quals") && I + 1 < argc)
      Opts.QualSpec = argv[++I];
    else if (argv[I][0] == '-')
      return Common.usageError(argv[I]);
    else if (!batch::expandArg(argv[I], Files, Error))
      return Common.fail(Error);
  }
  if (Files.empty())
    return Common.fail("no input file");
  unsigned Jobs = Common.jobs();
  Opts.Lim = Common.limits();
  Common.activate();

  batch::BatchConfig Config;
  Config.Jobs = Jobs;
  Config.Category = "qualcheck";
  Config.Headers = Files.size() > 1;
  return batch::runBatch(Files, Config,
                         [&Opts](const std::string &Path, size_t,
                                 batch::FileResult &R) {
                           checkOneFile(Path, Opts, R);
                         });
}

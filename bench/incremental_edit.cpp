//===- bench/incremental_edit.cpp - Edit-latency benchmark ----------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
//
// Measures what analyze-delta buys an editor loop: a unit with many small
// call clusters is analyzed once to seed a snapshot, then single-function
// edits are served both cold (full pipeline) and incrementally (restricted
// re-analysis against the snapshot), and the wall-clock ratio is the
// headline number. The unit is built here rather than taken from qualgen so
// the edit is guaranteed to be body-only: the incremental path's structural
// fallbacks (docs/INCREMENTAL.md) never fire and the benchmark measures the
// dirty-closure machinery itself.
//
//   incremental_edit [--functions N] [--edits K]
//
// Output is a JSON document (checked in as BENCH_incremental.json):
//
//   {"functions":600,"clusters":150,"edits":20,"hardware_threads":8,
//    "cold_seconds_mean":...,"delta_seconds_mean":...,"speedup":...,
//    "dirty_sccs_mean":...,"reused_sccs_mean":...,
//    "wall_seconds":...,"responses_identical":true}
//
// The run aborts (exit 1) if any delta response is not byte-identical to
// the cold run of the same edited source, or if any edit falls back to the
// full pipeline -- a fast answer with different bytes (or a benchmark that
// silently measured the cold path) would be a bug, not a result.
//
//===----------------------------------------------------------------------===//

#include "HostContext.h"

#include "serve/Pipelines.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

using namespace quals;
using namespace quals::serve;

namespace {

/// Functions per call cluster: one shared leaf, three callers. Clusters are
/// independent, so a body edit dirties one cluster and replays the rest.
constexpr unsigned kClusterSize = 4;

/// The unit: clusters of kClusterSize functions; members 1..3 of each
/// cluster call member 0. \p EditedFn >= 0 rewrites that function's body
/// (a new local write; no call or signature changes).
std::string buildUnit(unsigned Functions, int EditedFn) {
  std::string Src;
  Src.reserve(Functions * 64);
  char Line[160];
  for (unsigned I = 0; I != Functions; ++I) {
    unsigned Leaf = I - (I % kClusterSize);
    if (I == static_cast<unsigned>(EditedFn)) {
      std::snprintf(Line, sizeof(Line),
                    "int f%u(int **p, int *q) { int *a = *p; int x = *a + *q; "
                    "*q = x; return x + %u; }\n",
                    I, I);
    } else if (I == Leaf) {
      std::snprintf(Line, sizeof(Line),
                    "int f%u(int **p, int *q) { int *a = *p; int x = *a + *q; "
                    "return x + %u; }\n",
                    I, I);
    } else {
      std::snprintf(Line, sizeof(Line),
                    "int f%u(int **p, int *q) { return f%u(p, q) + %u; }\n", I,
                    Leaf, I);
    }
    Src += Line;
  }
  return Src;
}

AnalyzeJob makeJob(std::string Source) {
  AnalyzeJob Job;
  Job.Name = "edit.c";
  Job.Language = "c";
  Job.Source = std::move(Source);
  Job.Protos = true;
  return Job;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Functions = 600;
  unsigned Edits = 20;
  for (int I = 1; I != argc; ++I) {
    if (!std::strcmp(argv[I], "--functions") && I + 1 < argc)
      Functions = std::strtoul(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--edits") && I + 1 < argc)
      Edits = std::strtoul(argv[++I], nullptr, 10);
    else {
      std::fprintf(stderr,
                   "usage: incremental_edit [--functions N] [--edits K]\n");
      return 1;
    }
  }
  Functions -= Functions % kClusterSize; // Whole clusters only.
  if (Functions == 0 || Edits == 0) {
    std::fprintf(stderr, "incremental_edit: nothing to measure\n");
    return 1;
  }
  unsigned Clusters = Functions / kClusterSize;

  Timer Wall;
  // Seed the snapshot from the pristine unit (the editor's "file opened"
  // analysis). Every edit below is one function away from this baseline.
  CachedResult Baseline;
  std::shared_ptr<const constinf::UnitSnapshot> Snap;
  runAnalysis(makeJob(buildUnit(Functions, -1)), Baseline, &Snap);
  if (Baseline.ExitCode != 0 || !Snap) {
    std::fprintf(stderr, "incremental_edit: baseline analysis failed\n%s",
                 Baseline.Err.c_str());
    return 1;
  }

  double ColdTotal = 0, DeltaTotal = 0;
  uint64_t DirtyTotal = 0, ReusedTotal = 0;
  for (unsigned E = 0; E != Edits; ++E) {
    // Edit the shared leaf of a stride-walked cluster: the whole cluster is
    // coupled through the leaf's interface, so 4 SCCs re-solve.
    unsigned Cluster = (E * 7 + 1) % Clusters;
    AnalyzeJob Job =
        makeJob(buildUnit(Functions, static_cast<int>(Cluster * kClusterSize)));

    CachedResult Cold;
    Timer ColdT;
    runAnalysis(Job, Cold, nullptr);
    ColdTotal += ColdT.seconds();

    CachedResult Delta;
    std::shared_ptr<const constinf::UnitSnapshot> Next;
    DeltaOutcome Outcome;
    Timer DeltaT;
    runAnalysisDelta(Job, *Snap, Delta, Next, Outcome);
    DeltaTotal += DeltaT.seconds();

    if (Delta.Out != Cold.Out || Delta.Err != Cold.Err ||
        Delta.ExitCode != Cold.ExitCode) {
      std::fprintf(stderr,
                   "incremental_edit: edit %u: delta response differs from "
                   "cold run\n",
                   E);
      return 1;
    }
    if (!Outcome.UsedDelta) {
      std::fprintf(stderr, "incremental_edit: edit %u fell back to full (%s)\n",
                   E, Outcome.FallbackReason ? Outcome.FallbackReason : "?");
      return 1;
    }
    DirtyTotal += Outcome.DirtySccs;
    ReusedTotal += Outcome.ReusedSccs;
  }

  double ColdMean = ColdTotal / Edits, DeltaMean = DeltaTotal / Edits;
  // hardware_threads and wall_seconds keep the numbers honest across
  // runners, matching BENCH_batch.json.
  std::printf("{\"functions\":%u,\"clusters\":%u,\"edits\":%u,"
              "%s\n"
              " \"cold_seconds_mean\":%.6f,\"delta_seconds_mean\":%.6f,"
              "\"speedup\":%.2f,\n"
              " \"dirty_sccs_mean\":%.1f,\"reused_sccs_mean\":%.1f,\n"
              " \"wall_seconds\":%.4f,\"responses_identical\":true}\n",
              Functions, Clusters, Edits,
              bench::hardwareThreadsJson().c_str(),
              ColdMean, DeltaMean,
              DeltaMean > 0 ? ColdMean / DeltaMean : 0.0,
              static_cast<double>(DirtyTotal) / Edits,
              static_cast<double>(ReusedTotal) / Edits, Wall.seconds());
  return 0;
}

//===- bench/ablation_design.cpp - Section 4.2 design-decision ablations ---===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quantifies the Section 4.2 design decisions (see DESIGN.md) on the
/// benchmark suite by toggling each off in isolation:
///
///   baseline         the paper's rules (polymorphic)
///   mono             no qualifier polymorphism (the Table 2 comparison)
///   callers-first    FDG traversed in the wrong order: callers see no
///                    schemes, so polymorphism degenerates toward mono
///   casts-keep-flow  explicit casts no longer sever qualifier flow
///   trusting-libs    undefined functions no longer pin their parameters
///                    (unsound; shows the cost of conservatism)
///   fields-unshared  struct fields get per-access qualifiers (unsound;
///                    shows why the paper requires sharing)
///
/// Reported: possible-const counts per benchmark and configuration.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "support/TextTable.h"

#include <cstdio>

using namespace quals;
using namespace quals::bench;
using namespace quals::constinf;

namespace {

struct Config {
  const char *Name;
  ConstInference::Options Opts;
};

std::vector<Config> configs() {
  std::vector<Config> Result;
  Config Baseline{"baseline", {}};
  Result.push_back(Baseline);

  Config Mono = Baseline;
  Mono.Name = "mono";
  Mono.Opts.Polymorphic = false;
  Result.push_back(Mono);

  Config CallersFirst = Baseline;
  CallersFirst.Name = "callers-first";
  CallersFirst.Opts.CalleesFirst = false;
  Result.push_back(CallersFirst);

  Config CastsKeep = Baseline;
  CastsKeep.Name = "casts-keep-flow";
  CastsKeep.Opts.CastsSeverFlow = false;
  Result.push_back(CastsKeep);

  Config Trusting = Baseline;
  Trusting.Name = "trusting-libs";
  Trusting.Opts.ConservativeLibraries = false;
  Result.push_back(Trusting);

  Config Unshared = Baseline;
  Unshared.Name = "fields-unshared";
  Unshared.Opts.StructFieldsShared = false;
  Result.push_back(Unshared);
  return Result;
}

} // namespace

int main() {
  std::printf("Design-decision ablation: possible-const counts per "
              "configuration\n\n");

  std::vector<Config> Configs = configs();
  TextTable T;
  T.addColumn("Name");
  T.addColumn("Total", Align::Right);
  for (const Config &C : Configs)
    T.addColumn(C.Name, Align::Right);

  bool AllOk = true;
  for (const BenchmarkSpec &Spec : suite()) {
    synth::SynthProgram Prog = generate(Spec);
    auto Compiledp = compile(Spec.Name, Prog.Source);
    if (!Compiledp->Ok) {
      AllOk = false;
      continue;
    }
    std::vector<std::string> Row{Spec.Name};
    std::string Total;
    for (const Config &C : Configs) {
      ConstInference Inf(Compiledp->TU, *Compiledp->Diags, C.Opts);
      if (!Inf.run()) {
        // Ablations that weaken soundness can surface contradictions on
        // correct programs (e.g. casts-keep-flow turns legal const-removal
        // casts into errors). Report that as "err" rather than aborting.
        Row.push_back("err");
        Compiledp->Diags->clear();
        continue;
      }
      ConstCounts Counts = Inf.counts();
      Total = std::to_string(Counts.Total);
      Row.push_back(std::to_string(Counts.PossibleConst));
    }
    Row.insert(Row.begin() + 1, Total);
    T.addRow(std::move(Row));
  }
  std::printf("%s\n", T.render().c_str());
  std::printf(
      "reading guide: mono and callers-first should trail the baseline\n"
      "(polymorphism and the callees-first FDG order both matter);\n"
      "trusting-libs and fields-unshared overshoot it (they drop sound\n"
      "constraints); casts-keep-flow may reject correct programs that\n"
      "cast away const.\n");
  return AllOk ? 0 : 1;
}

//===- bench/table1_benchmarks.cpp - Regenerates Table 1 ------------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 1: the benchmark suite (name, lines, description). The
/// synthetic stand-ins' actual line counts are reported next to the paper's
/// so the size match is auditable.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "support/TextTable.h"

#include <cstdio>

using namespace quals;
using namespace quals::bench;

int main() {
  std::printf("Table 1: Benchmarks for const inference\n");
  std::printf("(paper programs replaced by deterministic synthetic "
              "stand-ins at the same size; see DESIGN.md)\n\n");

  TextTable T;
  T.addColumn("Name");
  T.addColumn("Lines (paper)", Align::Right);
  T.addColumn("Lines (generated)", Align::Right);
  T.addColumn("Description");

  for (const BenchmarkSpec &Spec : suite()) {
    synth::SynthProgram Prog = generate(Spec);
    T.addRow({Spec.Name, std::to_string(Spec.PaperLines),
              std::to_string(Prog.LineCount), Spec.Description});
  }
  std::printf("%s\n", T.render().c_str());
  return 0;
}

//===- bench/hardening_overhead.cpp - Resource-guard cost microbench -------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks bounding the price of the hardening
/// layer (support/Limits.h, docs/ROBUSTNESS.md). The guards sit on the
/// parser's hottest recursive paths, so their cost must stay in the noise:
///
/// \li BM_RecursionMeter -- the raw enter/exitRecursion pair, the per-frame
///     tax every guarded parse function pays. Expect ~1ns.
/// \li BM_ParsePipeline -- the full C parse+sema over a generated program
///     under default budgets, the end-to-end number regressions show up in.
/// \li BM_DepthBailout -- hostile 100k-deep input. Bailout must cost one
///     traversal of the input (the lexer sees every byte) and no more;
///     quadratic blowup here means a diagnostics or recovery regression.
///
//===----------------------------------------------------------------------===//

#include "cfront/CParser.h"
#include "cfront/CSema.h"
#include "gen/SynthGen.h"
#include "support/Diagnostics.h"

#include <benchmark/benchmark.h>

#include <string>

using namespace quals;

namespace {

void BM_RecursionMeter(benchmark::State &State) {
  SourceManager SM;
  DiagnosticEngine Diags(SM);
  for (auto _ : State) {
    RecursionGuard Guard(Diags, SourceLoc());
    benchmark::DoNotOptimize(Guard.ok());
  }
}
BENCHMARK(BM_RecursionMeter);

void BM_ParsePipeline(benchmark::State &State) {
  synth::SynthParams P =
      synth::paramsForLines(1, static_cast<unsigned>(State.range(0)));
  std::string Source = synth::generateProgram(P).Source;
  for (auto _ : State) {
    SourceManager SM;
    DiagnosticEngine Diags(SM);
    cfront::CAstContext Ast;
    cfront::CTypeContext Types;
    StringInterner Idents;
    cfront::TranslationUnit TU;
    bool Ok = cfront::parseCSource(SM, "bench.c", Source, Ast, Types,
                                   Idents, Diags, TU);
    if (Ok) {
      cfront::CSema Sema(Ast, Types, Idents, Diags);
      Ok = Sema.analyze(TU);
    }
    benchmark::DoNotOptimize(Ok);
  }
  State.SetBytesProcessed(int64_t(State.iterations()) * Source.size());
}
BENCHMARK(BM_ParsePipeline)->Arg(1000)->Arg(4000);

void BM_DepthBailout(benchmark::State &State) {
  const unsigned Depth = static_cast<unsigned>(State.range(0));
  std::string Source = "int f(void) { return ";
  Source.append(Depth, '(');
  Source += "1";
  Source.append(Depth, ')');
  Source += "; }\n";
  for (auto _ : State) {
    SourceManager SM;
    DiagnosticEngine Diags(SM);
    cfront::CAstContext Ast;
    cfront::CTypeContext Types;
    StringInterner Idents;
    cfront::TranslationUnit TU;
    bool Ok = cfront::parseCSource(SM, "deep.c", Source, Ast, Types,
                                   Idents, Diags, TU);
    benchmark::DoNotOptimize(Ok);
  }
  State.SetBytesProcessed(int64_t(State.iterations()) * Source.size());
}
BENCHMARK(BM_DepthBailout)->Arg(10000)->Arg(100000);

} // namespace

BENCHMARK_MAIN();

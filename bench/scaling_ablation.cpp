//===- bench/scaling_ablation.cpp - Inference-time scaling ablation --------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks two Section 4.4 claims on a controlled size sweep:
///
///   "the inference scales roughly linearly with the program size"
///   "the polymorphic inference takes at most 3 times longer than the
///    monomorphic inference"
///
/// Programs are generated at sizes from 1k to 40k lines with identical
/// feature rates; per-size we report mono/poly time, time per kLoC (flat =>
/// linear), and the poly/mono ratio. A least-squares log-log slope near 1.0
/// confirms linearity.
///
/// Each size also runs the polymorphic inference two more ways so the
/// solver's cycle collapsing is an ablation with numbers, not an assertion:
/// with collapsing disabled outright ("nc") and with an eager rebuild
/// policy that compacts the graph on every solve ("eager"). Under the
/// default pressure-triggered policy this one-shot workload never crosses
/// the rebuild threshold (the worklist drains in about one pass per edge),
/// so the default column should match "nc" -- that is the point: the
/// rebuild only fires when it can pay for itself. The SCC/dedup counters
/// therefore come from the eager run's instrumentation (SolverStats).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "support/TextTable.h"

#include <cmath>
#include <cstdio>

using namespace quals;
using namespace quals::bench;

int main() {
  std::printf("Scaling ablation: inference time vs program size\n\n");

  const unsigned Sizes[] = {1000, 2000, 4000, 8000, 16000, 28000, 40000};

  TextTable T;
  T.addColumn("Lines", Align::Right);
  T.addColumn("Qual vars", Align::Right);
  T.addColumn("Constraints", Align::Right);
  T.addColumn("Mono (s)", Align::Right);
  T.addColumn("Poly (s)", Align::Right);
  T.addColumn("Mono ms/kLoC", Align::Right);
  T.addColumn("Poly ms/kLoC", Align::Right);
  T.addColumn("Poly/Mono", Align::Right);

  TextTable Collapse;
  Collapse.addColumn("Lines", Align::Right);
  Collapse.addColumn("Poly (s)", Align::Right);
  Collapse.addColumn("Poly nc (s)", Align::Right);
  Collapse.addColumn("Poly eager (s)", Align::Right);
  Collapse.addColumn("nc/default", Align::Right);
  Collapse.addColumn("SCCs collapsed", Align::Right);
  Collapse.addColumn("Vars folded", Align::Right);
  Collapse.addColumn("Edges deduped", Align::Right);

  std::vector<double> LogSize, LogMono, LogPoly;
  bool AllOk = true;
  double MaxRatio = 0;

  for (unsigned Lines : Sizes) {
    synth::SynthParams P = synth::paramsForLines(7000 + Lines, Lines);
    synth::SynthProgram Prog = synth::generateProgram(P);
    auto C = compile("sweep-" + std::to_string(Lines), Prog.Source);
    if (!C->Ok) {
      AllOk = false;
      continue;
    }
    InferRun Mono = inferTimed(*C, false, /*Repeats=*/5);
    InferRun Poly = inferTimed(*C, true, /*Repeats=*/5);
    InferRun PolyNc =
        inferTimed(*C, true, /*Repeats=*/5, /*CollapseCycles=*/false);
    InferRun PolyEager = inferTimed(*C, true, /*Repeats=*/5,
                                    /*CollapseCycles=*/true,
                                    /*CollapsePressureFactor=*/0);
    if (!Mono.Ok || !Poly.Ok || !PolyNc.Ok || !PolyEager.Ok) {
      AllOk = false;
      continue;
    }
    double Ratio = Mono.Seconds > 0 ? Poly.Seconds / Mono.Seconds : 0;
    MaxRatio = std::max(MaxRatio, Ratio);
    T.addRow({std::to_string(Prog.LineCount), std::to_string(Poly.NumVars),
              std::to_string(Poly.NumConstraints), fmt(Mono.Seconds, 4),
              fmt(Poly.Seconds, 4),
              fmt(1e6 * Mono.Seconds / Prog.LineCount, 2),
              fmt(1e6 * Poly.Seconds / Prog.LineCount, 2),
              fmt(Ratio, 2) + "x"});
    Collapse.addRow(
        {std::to_string(Prog.LineCount), fmt(Poly.Seconds, 4),
         fmt(PolyNc.Seconds, 4), fmt(PolyEager.Seconds, 4),
         Poly.Seconds > 0 ? fmt(PolyNc.Seconds / Poly.Seconds, 2) + "x"
                          : std::string("-"),
         std::to_string(PolyEager.Stats.SccsCollapsed),
         std::to_string(PolyEager.Stats.VarsCollapsed),
         std::to_string(PolyEager.Stats.EdgesDeduped)});
    LogSize.push_back(std::log(Prog.LineCount));
    LogMono.push_back(std::log(Mono.Seconds));
    LogPoly.push_back(std::log(Poly.Seconds));
  }
  std::printf("%s\n", T.render().c_str());
  std::printf("SCC cycle collapsing ablation (nc = collapsing disabled, "
              "eager = rebuild every solve;\ncounters from the eager run -- "
              "the default pressure policy stays on the worklist tier "
              "here):\n%s\n",
              Collapse.render().c_str());

  auto slope = [](const std::vector<double> &X, const std::vector<double> &Y) {
    double N = X.size(), SX = 0, SY = 0, SXX = 0, SXY = 0;
    for (size_t I = 0; I != X.size(); ++I) {
      SX += X[I];
      SY += Y[I];
      SXX += X[I] * X[I];
      SXY += X[I] * Y[I];
    }
    return (N * SXY - SX * SY) / (N * SXX - SX * SX);
  };
  if (LogSize.size() >= 2) {
    std::printf("log-log slope (1.0 = linear): mono %.2f, poly %.2f\n",
                slope(LogSize, LogMono), slope(LogSize, LogPoly));
  }
  std::printf("max poly/mono time ratio across sweep: %.2fx "
              "(paper: at most 3x)\n",
              MaxRatio);
  return AllOk ? 0 : 1;
}

//===- bench/server_cache.cpp - Warm-vs-cold server latency benchmark ------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
//
// Measures what qualsd's content-addressed cache buys: the same request
// stream is served twice by one in-process Server -- the first pass runs
// the full pipeline per request (every lookup misses), the second answers
// everything from cache -- and the wall-clock ratio is the headline
// number. The corpus is qualgen's deterministic synthetic programs, sent
// as inline sources exactly as an editor integration would.
//
//   server_cache [--files N] [--lines N] [--seed S]
//
// Output is a JSON document (checked in as BENCH_server.json):
//
//   {"files":50,"lines_per_file":400,"hardware_threads":8,
//    "cold_seconds":...,"warm_seconds":...,"speedup":...,
//    "wall_seconds":...,
//    "cache":{"hits":50,"misses":50},"responses_identical":true}
//
// The run aborts (exit 1) if the two response streams are not
// byte-identical or the cache counters do not prove the warm pass hit --
// a fast second pass that returned different bytes would be a bug, not a
// result. docs/SERVER.md quotes the outcome.
//
//===----------------------------------------------------------------------===//

#include "HostContext.h"

#include "gen/SynthGen.h"
#include "serve/Protocol.h"
#include "serve/Server.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

using namespace quals;
using namespace quals::serve;

int main(int argc, char **argv) {
  unsigned Files = 50;
  unsigned Lines = 400;
  uint64_t Seed = 1004;
  for (int I = 1; I != argc; ++I) {
    if (!std::strcmp(argv[I], "--files") && I + 1 < argc)
      Files = std::strtoul(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--lines") && I + 1 < argc)
      Lines = std::strtoul(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--seed") && I + 1 < argc)
      Seed = std::strtoull(argv[++I], nullptr, 10);
    else {
      std::fprintf(stderr,
                   "usage: server_cache [--files N] [--lines N] [--seed S]\n");
      return 1;
    }
  }

  // One request line per synthetic program, inline source.
  std::string Requests;
  for (unsigned I = 0; I != Files; ++I) {
    synth::SynthProgram Prog =
        synth::generateProgram(synth::corpusFileParams(Seed, I, Lines));
    Requests += "{\"id\":" + std::to_string(I) +
                ",\"method\":\"analyze\",\"params\":{\"source\":";
    appendJsonString(Requests, Prog.Source);
    Requests += ",\"name\":";
    appendJsonString(Requests, synth::corpusFileName(I));
    Requests += "}}\n";
  }

  ServerConfig Config;
  Server S(Config);

  auto pass = [&S, &Requests](std::string &Responses) {
    std::istringstream In(Requests);
    std::ostringstream Out;
    Timer T;
    int Exit = S.run(In, Out);
    double Seconds = T.seconds();
    if (Exit != 0) {
      std::fprintf(stderr, "server_cache: run() exited %d\n", Exit);
      std::exit(1);
    }
    Responses = Out.str();
    return Seconds;
  };

  std::string ColdResponses, WarmResponses;
  Timer Wall;
  double ColdSeconds = pass(ColdResponses);
  double WarmSeconds = pass(WarmResponses);
  double WallSeconds = Wall.seconds();

  CacheStats Stats = S.cache().stats();
  bool Identical = ColdResponses == WarmResponses;
  if (!Identical || Stats.Hits != Files || Stats.Misses != Files) {
    std::fprintf(stderr,
                 "server_cache: warm pass is not a pure cache replay "
                 "(identical=%d hits=%llu misses=%llu)\n",
                 Identical, static_cast<unsigned long long>(Stats.Hits),
                 static_cast<unsigned long long>(Stats.Misses));
    return 1;
  }

  // hardware_threads and wall_seconds keep the numbers honest across
  // runners (a 1-thread container's timings mean something different).
  std::printf("{\"files\":%u,\"lines_per_file\":%u,"
              "%s"
              "\"cold_seconds\":%.4f,\"warm_seconds\":%.4f,"
              "\"speedup\":%.1f,\"wall_seconds\":%.4f,\n"
              " \"cache\":{\"hits\":%llu,\"misses\":%llu},"
              "\"responses_identical\":true}\n",
              Files, Lines, bench::hardwareThreadsJson().c_str(), ColdSeconds,
              WarmSeconds, WarmSeconds > 0 ? ColdSeconds / WarmSeconds : 0.0,
              WallSeconds, static_cast<unsigned long long>(Stats.Hits),
              static_cast<unsigned long long>(Stats.Misses));
  return 0;
}

//===- bench/HostContext.h - Honest-scaling runner context ------*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The honest-scaling context every benchmark report carries: the runner's
/// hardware parallelism, and the explicit caveat on single-core runners
/// where jobs/concurrency comparisons cannot show parallel speedup
/// (docs/PARALLEL.md). Previously copy-pasted into each bench main(); one
/// definition so the field names and the caveat string can never drift
/// between reports.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_BENCH_HOSTCONTEXT_H
#define QUALS_BENCH_HOSTCONTEXT_H

#include "support/ThreadPool.h"

#include <string>

namespace quals {
namespace bench {

/// The caveat value flagged on runners that cannot show parallel speedup.
inline const char *singleCoreCaveat() { return "single-core runner"; }

/// The runner's hardware parallelism, recorded next to every jobs or
/// concurrency comparison so ~1.0x scaling rows on a starved runner read
/// as environment, not regression.
inline unsigned hardwareThreads() { return ThreadPool::defaultWorkers(); }

/// The JSON fragment `"hardware_threads":H,`, plus
/// `"caveat":"single-core runner",` when H is 1 -- paste into an object
/// ahead of the measurement fields.
inline std::string hardwareThreadsJson() {
  std::string S =
      "\"hardware_threads\":" + std::to_string(hardwareThreads()) + ",";
  if (hardwareThreads() <= 1)
    S += std::string("\"caveat\":\"") + singleCoreCaveat() + "\",";
  return S;
}

} // namespace bench
} // namespace quals

#endif // QUALS_BENCH_HOSTCONTEXT_H

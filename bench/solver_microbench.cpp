//===- bench/solver_microbench.cpp - Constraint solver microbenchmarks -----===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks backing the Section 3.1 claim that
/// atomic qualifier constraints solve in linear time [HR97]: solve time per
/// constraint should stay flat as systems grow, across topologies (chains,
/// stars, layered DAGs, random graphs), and incremental re-solves should be
/// proportional to the newly added constraints.
///
/// BM_BulkSolveLinesPerSecond is the headline: modeled source lines
/// analyzed per second by the solver alone, with the dense branch-free
/// core toggled against the worklist baseline at identical collapse state
/// (BENCH_solver.json holds the checked-in ablation; docs/SOLVER.md the
/// design). Reports carry a "hardware_threads" context line and a
/// "caveat" when the runner has a single core.
///
/// Several benchmarks take a trailing 0/1 argument toggling the solver's
/// SCC cycle collapsing (SolverConfig::CollapseCycles) so the docs/SOLVER.md
/// claims are an ablation, not an assertion: on the cycle-free topologies
/// (chain, random DAG) collapsing may cost at most a small constant per
/// rebuild (tens of microseconds at the smallest sizes, at parity or ahead
/// from a few thousand variables up), and must be measurably faster on the
/// cyclic and duplicate-heavy ones (ring, strongly connected blob,
/// duplicated edges).
///
//===----------------------------------------------------------------------===//

#include "HostContext.h"

#include "qual/ConstraintSystem.h"
#include "qual/TypeScheme.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <benchmark/benchmark.h>

#include <string>
#include <thread>
#include <vector>

using namespace quals;

namespace {

QualifierSet makeQuals() {
  QualifierSet QS;
  QS.add("const", Polarity::Positive);
  QS.add("tainted", Polarity::Positive);
  QS.add("nonzero", Polarity::Negative);
  return QS;
}

/// Deterministic generator (benchmarks must not depend on global state).
struct Lcg {
  uint64_t State = 88172645463325252ULL;
  uint64_t next() {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    return State;
  }
  unsigned below(unsigned N) { return next() % N; }
};

/// Solver config for the collapse on/off ablation argument.
SolverConfig collapseConfig(bool Collapse) {
  SolverConfig Config;
  Config.CollapseCycles = Collapse;
  return Config;
}

/// Configs for the dense-core ablation: both sides rebuild eagerly (same
/// collapse, dedup, and CSR cost), so the delta is purely the propagation
/// core -- worklist pushes vs levelized branch-free sweeps.
SolverConfig denseAblationConfig(bool Dense) {
  SolverConfig Config;
  Config.CollapseMinNewEdges = 1;
  Config.CollapsePressureFactor = 0;
  Config.DenseSolve = Dense;
  Config.DenseMinNewEdges = 1;
  return Config;
}

void BM_BulkSolveLinesPerSecond(benchmark::State &State) {
  // The headline number (docs/SOLVER.md, BENCH_solver.json): a bulk solve
  // over a program-shaped layered DAG -- one qualifier variable per
  // modeled source line, ~4 constraints each, seeds and caps sprinkled in
  // -- with the trailing argument toggling the dense core against the
  // worklist baseline at identical collapse state. items/s is modeled
  // source lines analyzed per second by the solver alone.
  QualifierSet QS = makeQuals();
  unsigned Lines = State.range(0);
  SolverConfig Config = denseAblationConfig(State.range(1));
  for (auto _ : State) {
    ConstraintSystem Sys(QS, Config);
    Lcg R;
    std::vector<QualVarId> Vars;
    Vars.reserve(Lines);
    for (unsigned I = 0; I != Lines; ++I)
      Vars.push_back(Sys.freshVar("v"));
    for (unsigned I = 1; I != Lines; ++I)
      for (unsigned E = 0; E != 4; ++E)
        Sys.addLeq(QualExpr::makeVar(Vars[R.below(I)]),
                   QualExpr::makeVar(Vars[I]), {"edge"});
    for (unsigned S = 0; S != Lines / 20 + 1; ++S)
      Sys.addLeq(QualExpr::makeConst(LatticeValue(R.below(8))),
                 QualExpr::makeVar(Vars[R.below(Lines)]), {"seed"});
    bool Ok = Sys.solve();
    benchmark::DoNotOptimize(Ok);
    benchmark::DoNotOptimize(Sys.lower(Vars[Lines - 1]));
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) * Lines);
  State.counters["lines_per_second"] = benchmark::Counter(
      static_cast<double>(State.iterations()) * Lines,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BulkSolveLinesPerSecond)
    ->ArgsProduct({benchmark::CreateRange(1 << 12, 1 << 16, 4), {0, 1}});

void BM_SolveChain(benchmark::State &State) {
  QualifierSet QS = makeQuals();
  unsigned N = State.range(0);
  SolverConfig Config = collapseConfig(State.range(1));
  for (auto _ : State) {
    ConstraintSystem Sys(QS, Config);
    QualVarId Prev = Sys.freshVar("v0");
    Sys.addLeq(QualExpr::makeConst(QS.valueWithPresent({0})),
               QualExpr::makeVar(Prev), {"seed"});
    for (unsigned I = 1; I != N; ++I) {
      QualVarId Next = Sys.freshVar("v");
      Sys.addLeq(QualExpr::makeVar(Prev), QualExpr::makeVar(Next), {"edge"});
      Prev = Next;
    }
    bool Ok = Sys.solve();
    benchmark::DoNotOptimize(Ok);
    benchmark::DoNotOptimize(Sys.lower(Prev));
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) * N);
}
BENCHMARK(BM_SolveChain)
    ->ArgsProduct({benchmark::CreateRange(1 << 8, 1 << 17, 8), {0, 1}});

void BM_SolveStar(benchmark::State &State) {
  // One hub with N spokes: stresses fan-out.
  QualifierSet QS = makeQuals();
  unsigned N = State.range(0);
  for (auto _ : State) {
    ConstraintSystem Sys(QS);
    QualVarId Hub = Sys.freshVar("hub");
    Sys.addLeq(QualExpr::makeConst(QS.valueWithPresent({1})),
               QualExpr::makeVar(Hub), {"seed"});
    for (unsigned I = 0; I != N; ++I) {
      QualVarId Spoke = Sys.freshVar("s");
      Sys.addLeq(QualExpr::makeVar(Hub), QualExpr::makeVar(Spoke), {"edge"});
    }
    bool Ok = Sys.solve();
    benchmark::DoNotOptimize(Ok);
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) * N);
}
BENCHMARK(BM_SolveStar)->Range(1 << 8, 1 << 17);

void BM_SolveRandomDag(benchmark::State &State) {
  QualifierSet QS = makeQuals();
  unsigned N = State.range(0);
  SolverConfig Config = collapseConfig(State.range(1));
  for (auto _ : State) {
    ConstraintSystem Sys(QS, Config);
    Lcg R;
    std::vector<QualVarId> Vars;
    Vars.reserve(N);
    for (unsigned I = 0; I != N; ++I)
      Vars.push_back(Sys.freshVar("v"));
    // ~4 edges per var, respecting creation order (a DAG).
    for (unsigned I = 1; I != N; ++I)
      for (unsigned E = 0; E != 4; ++E)
        Sys.addLeq(QualExpr::makeVar(Vars[R.below(I)]),
                   QualExpr::makeVar(Vars[I]), {"edge"});
    for (unsigned S = 0; S != N / 20 + 1; ++S)
      Sys.addLeq(QualExpr::makeConst(LatticeValue(R.below(8))),
                 QualExpr::makeVar(Vars[R.below(N)]), {"seed"});
    for (unsigned U = 0; U != N / 20 + 1; ++U)
      Sys.addLeq(QualExpr::makeVar(Vars[R.below(N)]),
                 QualExpr::makeConst(QS.top()), {"bound"});
    bool Ok = Sys.solve();
    benchmark::DoNotOptimize(Ok);
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) * N * 4);
}
BENCHMARK(BM_SolveRandomDag)
    ->ArgsProduct({benchmark::CreateRange(1 << 8, 1 << 15, 8), {0, 1}});

void BM_SolveRing(benchmark::State &State) {
  // One big <= cycle with lattice seeds spread around it: without collapsing
  // every seeded bit walks the whole ring; with collapsing the ring is a
  // single representative and propagation is empty.
  QualifierSet QS = makeQuals();
  unsigned N = State.range(0);
  SolverConfig Config = collapseConfig(State.range(1));
  for (auto _ : State) {
    ConstraintSystem Sys(QS, Config);
    std::vector<QualVarId> Vars;
    Vars.reserve(N);
    for (unsigned I = 0; I != N; ++I)
      Vars.push_back(Sys.freshVar("v"));
    for (unsigned I = 0; I != N; ++I)
      Sys.addLeq(QualExpr::makeVar(Vars[I]),
                 QualExpr::makeVar(Vars[(I + 1) % N]), {"edge"});
    for (unsigned S = 0; S != 3; ++S)
      Sys.addLeq(QualExpr::makeConst(LatticeValue(uint64_t(1) << S)),
                 QualExpr::makeVar(Vars[(S * N) / 3]), {"seed"});
    bool Ok = Sys.solve();
    benchmark::DoNotOptimize(Ok);
    benchmark::DoNotOptimize(Sys.lower(Vars[0]));
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) * N);
}
BENCHMARK(BM_SolveRing)
    ->ArgsProduct({benchmark::CreateRange(1 << 8, 1 << 16, 8), {0, 1}});

void BM_SolveSccBlob(benchmark::State &State) {
  // ~4 random edges per variable with no ordering constraint: the graph is
  // one giant strongly connected component plus tendrils. Collapsing folds
  // it to a handful of representatives and drops nearly every edge as
  // component-internal; the worklist baseline keeps bouncing values around.
  QualifierSet QS = makeQuals();
  unsigned N = State.range(0);
  SolverConfig Config = collapseConfig(State.range(1));
  for (auto _ : State) {
    ConstraintSystem Sys(QS, Config);
    Lcg R;
    std::vector<QualVarId> Vars;
    Vars.reserve(N);
    for (unsigned I = 0; I != N; ++I)
      Vars.push_back(Sys.freshVar("v"));
    for (unsigned I = 0; I != N; ++I)
      for (unsigned E = 0; E != 4; ++E)
        Sys.addLeq(QualExpr::makeVar(Vars[I]),
                   QualExpr::makeVar(Vars[R.below(N)]), {"edge"});
    for (unsigned S = 0; S != N / 20 + 1; ++S)
      Sys.addLeq(QualExpr::makeConst(LatticeValue(R.below(8))),
                 QualExpr::makeVar(Vars[R.below(N)]), {"seed"});
    bool Ok = Sys.solve();
    benchmark::DoNotOptimize(Ok);
    benchmark::DoNotOptimize(Sys.lower(Vars[0]));
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) * N * 4);
}
BENCHMARK(BM_SolveSccBlob)
    ->ArgsProduct({benchmark::CreateRange(1 << 8, 1 << 15, 8), {0, 1}});

void BM_SolveDuplicateEdges(benchmark::State &State) {
  // A chain where every hop is stated 8 times (constraint generators emit
  // duplicates freely; e.g. one per call site), then 16 rounds of new facts
  // arriving at the head, each re-solved. The first solve pays the rebuild
  // and dedups the parallel edges; every later propagation walks one edge
  // per hop where the baseline walks all eight. This is the pattern dedup
  // is for: a long-lived system whose graph is propagated over many times.
  QualifierSet QS;
  std::vector<QualifierId> Quals;
  for (unsigned I = 0; I != 16; ++I)
    Quals.push_back(QS.add("q" + std::to_string(I), Polarity::Positive));
  unsigned N = State.range(0);
  SolverConfig Config = collapseConfig(State.range(1));
  for (auto _ : State) {
    ConstraintSystem Sys(QS, Config);
    QualVarId First = Sys.freshVar("v0");
    QualVarId Prev = First;
    for (unsigned I = 1; I != N; ++I) {
      QualVarId Next = Sys.freshVar("v");
      for (unsigned D = 0; D != 8; ++D)
        Sys.addLeq(QualExpr::makeVar(Prev), QualExpr::makeVar(Next),
                   {"edge"});
      Prev = Next;
    }
    bool Ok = true;
    for (QualifierId Q : Quals) {
      Sys.addLeq(QualExpr::makeConst(QS.valueWithPresent({Q})),
                 QualExpr::makeVar(First), {"new fact"});
      Ok &= Sys.solve();
    }
    benchmark::DoNotOptimize(Ok);
    benchmark::DoNotOptimize(Sys.lower(Prev));
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) * N * 8 *
                          16);
}
BENCHMARK(BM_SolveDuplicateEdges)
    ->ArgsProduct({benchmark::CreateRange(1 << 8, 1 << 14, 8), {0, 1}});

void BM_UpperBoundBackward(benchmark::State &State) {
  // A chain with an upper bound at the end: exercises backward meets.
  QualifierSet QS = makeQuals();
  unsigned N = State.range(0);
  for (auto _ : State) {
    ConstraintSystem Sys(QS);
    QualVarId First = Sys.freshVar("v0");
    QualVarId Prev = First;
    for (unsigned I = 1; I != N; ++I) {
      QualVarId Next = Sys.freshVar("v");
      Sys.addLeq(QualExpr::makeVar(Prev), QualExpr::makeVar(Next), {"edge"});
      Prev = Next;
    }
    QualifierId Const;
    QS.lookup("const", Const);
    Sys.addLeq(QualExpr::makeVar(Prev),
               QualExpr::makeConst(QS.notQual(Const)), {"cap"});
    bool Ok = Sys.solve();
    benchmark::DoNotOptimize(Ok);
    benchmark::DoNotOptimize(Sys.upper(First));
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) * N);
}
BENCHMARK(BM_UpperBoundBackward)->Range(1 << 8, 1 << 17);

void BM_IncrementalResolve(benchmark::State &State) {
  // Re-solve cost after adding a small batch to a large solved system:
  // should be proportional to the batch, not the system.
  QualifierSet QS = makeQuals();
  unsigned N = 1 << 16;
  ConstraintSystem Sys(QS);
  Lcg R;
  std::vector<QualVarId> Vars;
  for (unsigned I = 0; I != N; ++I)
    Vars.push_back(Sys.freshVar("v"));
  for (unsigned I = 1; I != N; ++I)
    Sys.addLeq(QualExpr::makeVar(Vars[R.below(I)]),
               QualExpr::makeVar(Vars[I]), {"edge"});
  Sys.solve();
  for (auto _ : State) {
    for (unsigned I = 0; I != 16; ++I) {
      QualVarId V = Sys.freshVar("inc");
      Sys.addLeq(QualExpr::makeVar(Vars[R.below(N)]), QualExpr::makeVar(V),
                 {"inc"});
    }
    bool Ok = Sys.solve();
    benchmark::DoNotOptimize(Ok);
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) * 16);
}
BENCHMARK(BM_IncrementalResolve);

void BM_DisabledTraceScope(benchmark::State &State) {
  // Raw per-scope cost of instrumentation when tracing is off: one relaxed
  // load in the constructor, one branch in the destructor. This is the
  // price every instrumented phase pays in an un-traced run, so it must
  // stay in the nanosecond range.
  Tracer::instance().setEnabled(false);
  MetricsRegistry::setCollecting(false);
  for (auto _ : State) {
    TraceScope Scope("bench.disabled", "bench");
    benchmark::DoNotOptimize(Scope);
    traceInstant("bench.disabled.instant", "bench");
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_DisabledTraceScope);

void BM_SolveObservability(benchmark::State &State) {
  // End-to-end ablation for the observability hooks in the solve path:
  // arg 0 runs with every sink off (the default production configuration),
  // arg 1 with the tracer and metrics collection both on. The arg-0 numbers
  // must match BM_SolveChain at the same size; the delta to arg 1 is the
  // full cost of recording.
  QualifierSet QS = makeQuals();
  unsigned N = 1 << 12;
  bool Observe = State.range(0);
  Tracer::instance().setEnabled(Observe);
  MetricsRegistry::setCollecting(Observe);
  for (auto _ : State) {
    Tracer::instance().clear(); // keep the event buffer from growing
    ConstraintSystem Sys(QS);
    QualVarId Prev = Sys.freshVar("v0");
    Sys.addLeq(QualExpr::makeConst(QS.valueWithPresent({0})),
               QualExpr::makeVar(Prev), {"seed"});
    for (unsigned I = 1; I != N; ++I) {
      QualVarId Next = Sys.freshVar("v");
      Sys.addLeq(QualExpr::makeVar(Prev), QualExpr::makeVar(Next), {"edge"});
      Prev = Next;
    }
    bool Ok = Sys.solve();
    benchmark::DoNotOptimize(Ok);
    benchmark::DoNotOptimize(Sys.lower(Prev));
  }
  Tracer::instance().setEnabled(false);
  Tracer::instance().clear();
  MetricsRegistry::setCollecting(false);
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) * N);
}
BENCHMARK(BM_SolveObservability)->Arg(0)->Arg(1);

void BM_HistogramRecord(benchmark::State &State) {
  // The per-request cost of qualsd's always-on latency telemetry: arg 0
  // measures the gated-off path (the latency-for lookup resolving to null,
  // i.e. --no-telemetry), arg 1 a live Histogram::record(). The delta is
  // what every served request pays for its p50/p99 visibility --
  // bench/server_latency measures the same ablation end to end.
  Histogram H;
  bool Enabled = State.range(0);
  Histogram *Target = Enabled ? &H : nullptr;
  uint64_t Value = 1;
  for (auto _ : State) {
    if (Target)
      Target->record(Value);
    benchmark::DoNotOptimize(Target);
    Value = (Value * 2862933555777941757ull + 3037000493ull) >> 32;
  }
  benchmark::DoNotOptimize(H.count());
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_HistogramRecord)->Arg(0)->Arg(1);

void BM_SchemeGeneralizeInstantiate(benchmark::State &State) {
  // Generalize a body-sized subgraph down to interface summaries, then
  // instantiate repeatedly -- the poly inference inner loop.
  QualifierSet QS = makeQuals();
  unsigned BodySize = State.range(0);
  for (auto _ : State) {
    ConstraintSystem Sys(QS);
    QualTypeFactory Factory;
    TypeCtor Int("int", {});
    TypeCtor Fn("->", {Variance::Contravariant, Variance::Covariant},
                PrintStyle::Infix);
    Watermark Mark = takeWatermark(Sys);
    QualVarId P = Sys.freshVar("p");
    QualVarId Ret = Sys.freshVar("r");
    // Internal chain p -> ... -> ret to be compressed away.
    QualVarId Prev = P;
    for (unsigned I = 0; I != BodySize; ++I) {
      QualVarId Next = Sys.freshVar("i");
      Sys.addLeq(QualExpr::makeVar(Prev), QualExpr::makeVar(Next), {"body"});
      Prev = Next;
    }
    Sys.addLeq(QualExpr::makeVar(Prev), QualExpr::makeVar(Ret), {"body"});
    QualType PT = Factory.make(QualExpr::makeVar(P), &Int);
    QualType RT = Factory.make(QualExpr::makeVar(Ret), &Int);
    QualType FnTy =
        Factory.make(QualExpr::makeVar(Sys.freshVar("f")), &Fn, {PT, RT});
    QualScheme S = QualScheme::generalize(Sys, FnTy, Mark);
    for (unsigned Use = 0; Use != 32; ++Use) {
      QualType T = S.instantiate(Sys, Factory);
      benchmark::DoNotOptimize(T);
    }
    bool Ok = Sys.solve();
    benchmark::DoNotOptimize(Ok);
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          BodySize);
}
BENCHMARK(BM_SchemeGeneralizeInstantiate)->Range(1 << 4, 1 << 12);

} // namespace

// Custom main (instead of BENCHMARK_MAIN()) so every report carries the
// honest-scaling context: the runner's hardware thread count, and an
// explicit caveat when there is only one -- a single-core runner cannot
// show parallel speedups, only the dense-vs-worklist layout delta.
int main(int argc, char **argv) {
  unsigned Hw = bench::hardwareThreads();
  benchmark::AddCustomContext("hardware_threads", std::to_string(Hw));
  if (Hw <= 1)
    benchmark::AddCustomContext("caveat", bench::singleCoreCaveat());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

//===- bench/solver_microbench.cpp - Constraint solver microbenchmarks -----===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks backing the Section 3.1 claim that
/// atomic qualifier constraints solve in linear time [HR97]: solve time per
/// constraint should stay flat as systems grow, across topologies (chains,
/// stars, layered DAGs, random graphs), and incremental re-solves should be
/// proportional to the newly added constraints.
///
//===----------------------------------------------------------------------===//

#include "qual/ConstraintSystem.h"
#include "qual/TypeScheme.h"

#include <benchmark/benchmark.h>

using namespace quals;

namespace {

QualifierSet makeQuals() {
  QualifierSet QS;
  QS.add("const", Polarity::Positive);
  QS.add("tainted", Polarity::Positive);
  QS.add("nonzero", Polarity::Negative);
  return QS;
}

/// Deterministic generator (benchmarks must not depend on global state).
struct Lcg {
  uint64_t State = 88172645463325252ULL;
  uint64_t next() {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    return State;
  }
  unsigned below(unsigned N) { return next() % N; }
};

void BM_SolveChain(benchmark::State &State) {
  QualifierSet QS = makeQuals();
  unsigned N = State.range(0);
  for (auto _ : State) {
    ConstraintSystem Sys(QS);
    QualVarId Prev = Sys.freshVar("v0");
    Sys.addLeq(QualExpr::makeConst(QS.valueWithPresent({0})),
               QualExpr::makeVar(Prev), {"seed"});
    for (unsigned I = 1; I != N; ++I) {
      QualVarId Next = Sys.freshVar("v");
      Sys.addLeq(QualExpr::makeVar(Prev), QualExpr::makeVar(Next), {"edge"});
      Prev = Next;
    }
    bool Ok = Sys.solve();
    benchmark::DoNotOptimize(Ok);
    benchmark::DoNotOptimize(Sys.lower(Prev));
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) * N);
}
BENCHMARK(BM_SolveChain)->Range(1 << 8, 1 << 17);

void BM_SolveStar(benchmark::State &State) {
  // One hub with N spokes: stresses fan-out.
  QualifierSet QS = makeQuals();
  unsigned N = State.range(0);
  for (auto _ : State) {
    ConstraintSystem Sys(QS);
    QualVarId Hub = Sys.freshVar("hub");
    Sys.addLeq(QualExpr::makeConst(QS.valueWithPresent({1})),
               QualExpr::makeVar(Hub), {"seed"});
    for (unsigned I = 0; I != N; ++I) {
      QualVarId Spoke = Sys.freshVar("s");
      Sys.addLeq(QualExpr::makeVar(Hub), QualExpr::makeVar(Spoke), {"edge"});
    }
    bool Ok = Sys.solve();
    benchmark::DoNotOptimize(Ok);
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) * N);
}
BENCHMARK(BM_SolveStar)->Range(1 << 8, 1 << 17);

void BM_SolveRandomDag(benchmark::State &State) {
  QualifierSet QS = makeQuals();
  unsigned N = State.range(0);
  for (auto _ : State) {
    ConstraintSystem Sys(QS);
    Lcg R;
    std::vector<QualVarId> Vars;
    Vars.reserve(N);
    for (unsigned I = 0; I != N; ++I)
      Vars.push_back(Sys.freshVar("v"));
    // ~4 edges per var, respecting creation order (a DAG).
    for (unsigned I = 1; I != N; ++I)
      for (unsigned E = 0; E != 4; ++E)
        Sys.addLeq(QualExpr::makeVar(Vars[R.below(I)]),
                   QualExpr::makeVar(Vars[I]), {"edge"});
    for (unsigned S = 0; S != N / 20 + 1; ++S)
      Sys.addLeq(QualExpr::makeConst(LatticeValue(R.below(8))),
                 QualExpr::makeVar(Vars[R.below(N)]), {"seed"});
    for (unsigned U = 0; U != N / 20 + 1; ++U)
      Sys.addLeq(QualExpr::makeVar(Vars[R.below(N)]),
                 QualExpr::makeConst(QS.top()), {"bound"});
    bool Ok = Sys.solve();
    benchmark::DoNotOptimize(Ok);
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) * N * 4);
}
BENCHMARK(BM_SolveRandomDag)->Range(1 << 8, 1 << 15);

void BM_UpperBoundBackward(benchmark::State &State) {
  // A chain with an upper bound at the end: exercises backward meets.
  QualifierSet QS = makeQuals();
  unsigned N = State.range(0);
  for (auto _ : State) {
    ConstraintSystem Sys(QS);
    QualVarId First = Sys.freshVar("v0");
    QualVarId Prev = First;
    for (unsigned I = 1; I != N; ++I) {
      QualVarId Next = Sys.freshVar("v");
      Sys.addLeq(QualExpr::makeVar(Prev), QualExpr::makeVar(Next), {"edge"});
      Prev = Next;
    }
    QualifierId Const;
    QS.lookup("const", Const);
    Sys.addLeq(QualExpr::makeVar(Prev),
               QualExpr::makeConst(QS.notQual(Const)), {"cap"});
    bool Ok = Sys.solve();
    benchmark::DoNotOptimize(Ok);
    benchmark::DoNotOptimize(Sys.upper(First));
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) * N);
}
BENCHMARK(BM_UpperBoundBackward)->Range(1 << 8, 1 << 17);

void BM_IncrementalResolve(benchmark::State &State) {
  // Re-solve cost after adding a small batch to a large solved system:
  // should be proportional to the batch, not the system.
  QualifierSet QS = makeQuals();
  unsigned N = 1 << 16;
  ConstraintSystem Sys(QS);
  Lcg R;
  std::vector<QualVarId> Vars;
  for (unsigned I = 0; I != N; ++I)
    Vars.push_back(Sys.freshVar("v"));
  for (unsigned I = 1; I != N; ++I)
    Sys.addLeq(QualExpr::makeVar(Vars[R.below(I)]),
               QualExpr::makeVar(Vars[I]), {"edge"});
  Sys.solve();
  for (auto _ : State) {
    for (unsigned I = 0; I != 16; ++I) {
      QualVarId V = Sys.freshVar("inc");
      Sys.addLeq(QualExpr::makeVar(Vars[R.below(N)]), QualExpr::makeVar(V),
                 {"inc"});
    }
    bool Ok = Sys.solve();
    benchmark::DoNotOptimize(Ok);
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) * 16);
}
BENCHMARK(BM_IncrementalResolve);

void BM_SchemeGeneralizeInstantiate(benchmark::State &State) {
  // Generalize a body-sized subgraph down to interface summaries, then
  // instantiate repeatedly -- the poly inference inner loop.
  QualifierSet QS = makeQuals();
  unsigned BodySize = State.range(0);
  for (auto _ : State) {
    ConstraintSystem Sys(QS);
    QualTypeFactory Factory;
    TypeCtor Int("int", {});
    TypeCtor Fn("->", {Variance::Contravariant, Variance::Covariant},
                PrintStyle::Infix);
    Watermark Mark = takeWatermark(Sys);
    QualVarId P = Sys.freshVar("p");
    QualVarId Ret = Sys.freshVar("r");
    // Internal chain p -> ... -> ret to be compressed away.
    QualVarId Prev = P;
    for (unsigned I = 0; I != BodySize; ++I) {
      QualVarId Next = Sys.freshVar("i");
      Sys.addLeq(QualExpr::makeVar(Prev), QualExpr::makeVar(Next), {"body"});
      Prev = Next;
    }
    Sys.addLeq(QualExpr::makeVar(Prev), QualExpr::makeVar(Ret), {"body"});
    QualType PT = Factory.make(QualExpr::makeVar(P), &Int);
    QualType RT = Factory.make(QualExpr::makeVar(Ret), &Int);
    QualType FnTy =
        Factory.make(QualExpr::makeVar(Sys.freshVar("f")), &Fn, {PT, RT});
    QualScheme S = QualScheme::generalize(Sys, FnTy, Mark);
    for (unsigned Use = 0; Use != 32; ++Use) {
      QualType T = S.instantiate(Sys, Factory);
      benchmark::DoNotOptimize(T);
    }
    bool Ok = Sys.solve();
    benchmark::DoNotOptimize(Ok);
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          BodySize);
}
BENCHMARK(BM_SchemeGeneralizeInstantiate)->Range(1 << 4, 1 << 12);

} // namespace

BENCHMARK_MAIN();

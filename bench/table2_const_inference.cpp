//===- bench/table2_const_inference.cpp - Regenerates Table 2 --------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 2: per benchmark, the front-end ("compile") time, the
/// monomorphic and polymorphic inference times (average of five runs, as in
/// the paper), and the four const counts -- Declared, Mono, Poly, Total
/// possible. The paper's numbers are printed alongside; absolute values
/// differ (different programs, hardware, and 27 years), but the shape should
/// hold: Declared < Mono <= Poly < Total, inference roughly linear in
/// program size, and poly no more than ~3x mono time.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "support/TextTable.h"

#include <cstdio>

using namespace quals;
using namespace quals::bench;

int main() {
  std::printf("Table 2: Number of inferred possibly-const positions\n\n");

  TextTable T;
  T.addColumn("Name");
  T.addColumn("Compile (s)", Align::Right);
  T.addColumn("Mono (s)", Align::Right);
  T.addColumn("Poly (s)", Align::Right);
  T.addColumn("Declared", Align::Right);
  T.addColumn("Mono", Align::Right);
  T.addColumn("Poly", Align::Right);
  T.addColumn("Total", Align::Right);
  T.addColumn("[paper D/M/P/T]");

  bool AllOk = true;
  double MaxPolyOverMono = 0;
  for (const BenchmarkSpec &Spec : suite()) {
    synth::SynthProgram Prog = generate(Spec);
    auto C = compile(Spec.Name, Prog.Source);
    if (!C->Ok) {
      AllOk = false;
      continue;
    }
    InferRun Mono = inferTimed(*C, /*Polymorphic=*/false);
    InferRun Poly = inferTimed(*C, /*Polymorphic=*/true);
    if (!Mono.Ok || !Poly.Ok) {
      AllOk = false;
      continue;
    }
    if (Mono.Seconds > 0)
      MaxPolyOverMono =
          std::max(MaxPolyOverMono, Poly.Seconds / Mono.Seconds);

    std::string PaperRef = std::to_string(Spec.PaperDeclared) + "/" +
                           std::to_string(Spec.PaperMono) + "/" +
                           std::to_string(Spec.PaperPoly) + "/" +
                           std::to_string(Spec.PaperTotal);
    T.addRow({Spec.Name, fmt(C->CompileSeconds, 3), fmt(Mono.Seconds, 3),
              fmt(Poly.Seconds, 3), std::to_string(Mono.Counts.Declared),
              std::to_string(Mono.Counts.PossibleConst),
              std::to_string(Poly.Counts.PossibleConst),
              std::to_string(Mono.Counts.Total), PaperRef});
  }
  std::printf("%s\n", T.render().c_str());
  std::printf("max poly/mono time ratio: %.2fx (paper: at most 3x)\n",
              MaxPolyOverMono);
  return AllOk ? 0 : 1;
}

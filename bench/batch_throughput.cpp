//===- bench/batch_throughput.cpp - Corpus batch scaling benchmark ---------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
//
// Measures corpus throughput of the parallel batch layer: the paper's
// evaluation is six whole GNU packages analyzed one after another; this
// harness generates a synthetic corpus (qualgen's generator, one
// independent program per file), then runs the full qualcc per-file
// pipeline (parse, sema, const inference) over it through
// batch::runBatch at increasing worker counts and reports wall-clock
// scaling.
//
//   batch_throughput [--files N] [--lines N] [--max-jobs N] [--seed S]
//
// Output is a JSON document (checked in as BENCH_batch.json):
//
//   {"corpus_files":200,"lines_per_file":120,"hardware_threads":8,
//    "total_positions":...,  // proof the analysis ran
//    "runs":[{"jobs":1,"seconds":...,"speedup":1.0}, ...]}
//
// Speedup is relative to -j1 on the same corpus in the same process.
// Scaling requires hardware parallelism: on an H-thread host the expected
// plateau is ~min(jobs, H).
//
//===----------------------------------------------------------------------===//

#include "HostContext.h"

#include "cfront/CParser.h"
#include "cfront/CSema.h"
#include "constinf/ConstInfer.h"
#include "gen/SynthGen.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include "BatchDriver.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace quals;
using namespace quals::cfront;
using namespace quals::constinf;

static bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

/// The qualcc per-file pipeline in an isolated context; returns the number
/// of interesting const positions (0 on any failure).
static unsigned analyzeOne(const std::string &Path) {
  std::string Source;
  if (!readFile(Path, Source))
    return 0;
  SourceManager SM;
  DiagnosticEngine Diags(SM);
  CAstContext Ast;
  CTypeContext Types;
  StringInterner Idents;
  TranslationUnit TU;
  if (!parseCSource(SM, Path, std::move(Source), Ast, Types, Idents, Diags,
                    TU))
    return 0;
  CSema Sema(Ast, Types, Idents, Diags);
  if (!Sema.analyze(TU))
    return 0;
  ConstInference::Options Opts;
  ConstInference Inf(TU, Diags, Opts);
  if (!Inf.run())
    return 0;
  return Inf.counts().Total;
}

int main(int argc, char **argv) {
  unsigned Files = 200;
  unsigned Lines = 120;
  unsigned MaxJobs = std::max(8u, ThreadPool::defaultWorkers());
  uint64_t Seed = 42;
  for (int I = 1; I != argc; ++I) {
    if (!std::strcmp(argv[I], "--files") && I + 1 < argc)
      Files = std::strtoul(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--lines") && I + 1 < argc)
      Lines = std::strtoul(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--max-jobs") && I + 1 < argc)
      MaxJobs = std::strtoul(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--seed") && I + 1 < argc)
      Seed = std::strtoull(argv[++I], nullptr, 10);
    else {
      std::fprintf(stderr, "usage: batch_throughput [--files N] [--lines N] "
                           "[--max-jobs N] [--seed S]\n");
      return 1;
    }
  }

  // Generate the corpus into a scratch directory.
  namespace fs = std::filesystem;
  fs::path Dir = fs::temp_directory_path() /
                 ("quals_batch_bench_" + std::to_string(::getpid()));
  fs::create_directories(Dir);
  std::vector<std::string> Paths;
  Paths.reserve(Files);
  for (unsigned I = 0; I != Files; ++I) {
    synth::SynthProgram Prog =
        synth::generateProgram(synth::corpusFileParams(Seed, I, Lines));
    std::string Path = (Dir / synth::corpusFileName(I)).string();
    std::ofstream Out(Path, std::ios::binary);
    Out << Prog.Source;
    Paths.push_back(std::move(Path));
  }

  // Job ladder: 1, 2, 4, ... up to MaxJobs.
  std::vector<unsigned> Ladder;
  for (unsigned J = 1; J < MaxJobs; J *= 2)
    Ladder.push_back(J);
  Ladder.push_back(MaxJobs);

  std::FILE *Null = std::fopen("/dev/null", "w");
  std::atomic<uint64_t> Positions{0};
  double BaselineSeconds = 0;
  std::string RunsJson;
  for (unsigned Jobs : Ladder) {
    Positions = 0;
    batch::BatchConfig Config;
    Config.Jobs = Jobs;
    if (Null)
      Config.OutStream = Config.ErrStream = Null;
    // Warm the page cache on the first run's file reads by timing the
    // batch itself only; generation above already touched every file.
    Timer Wall;
    int Exit = batch::runBatch(
        Paths, Config,
        [&Positions](const std::string &Path, size_t, batch::FileResult &R) {
          unsigned Total = analyzeOne(Path);
          if (Total == 0)
            R.ExitCode = 1;
          Positions.fetch_add(Total);
        });
    double Seconds = Wall.seconds();
    if (Exit != 0) {
      std::fprintf(stderr, "batch_throughput: analysis failed at -j%u\n",
                   Jobs);
      return 1;
    }
    if (Jobs == 1)
      BaselineSeconds = Seconds;
    char Buf[160];
    std::snprintf(Buf, sizeof(Buf),
                  "%s\n  {\"jobs\":%u,\"seconds\":%.3f,\"speedup\":%.2f}",
                  RunsJson.empty() ? "" : ",", Jobs, Seconds,
                  BaselineSeconds > 0 ? BaselineSeconds / Seconds : 1.0);
    RunsJson += Buf;
    std::fprintf(stderr, "-j%-3u %8.3fs  speedup %.2fx\n", Jobs, Seconds,
                 BaselineSeconds > 0 ? BaselineSeconds / Seconds : 1.0);
  }
  if (Null)
    std::fclose(Null);
  std::error_code Ec;
  fs::remove_all(Dir, Ec);

  // Honest-scaling guard: speedup claims are meaningless without the
  // runner's parallelism on record, and a single-core runner can show no
  // scaling at all -- say so loudly rather than letting ~1.0x rows read
  // as a regression (docs/PARALLEL.md).
  std::printf("{\"corpus_files\":%u,\"lines_per_file\":%u,"
              "%s\"total_positions\":%llu,"
              "\"runs\":[%s\n]}\n",
              Files, Lines, bench::hardwareThreadsJson().c_str(),
              static_cast<unsigned long long>(Positions.load()), RunsJson.c_str());
  return 0;
}

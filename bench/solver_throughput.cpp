//===- bench/solver_throughput.cpp - Dense/parallel solver scaling ---------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
//
// The checked-in evidence for the dense branch-free propagation core and
// its SCC-sharded parallel dispatch (docs/SOLVER.md): four program-shaped
// constraint workloads, each solved three ways --
//
//   old      the worklist engine at default configuration -- on a bulk
//            first solve the pressure policy has earned no rebuild, so
//            propagation runs the old pointer-chasing pending-list
//            layout, exactly the pre-dense hot path (the headline
//            baseline); old_eager_seconds additionally records the
//            worklist on the eagerly collapsed CSR, isolating the
//            propagation core from the shared rebuild;
//   dense    the levelized dense core at -j1;
//   dense-jN a -j1..jN ladder sharding level slices over a ThreadPool.
//
// Every configuration is gated on byte identity before any timing is
// reported: solved bounds and rendered diagnostics must match between old
// and dense, and bounds, diagnostics, AND --stats solver counters must
// match across every job count. A mismatch aborts with exit 1 -- this is
// the gate the perf-smoke CI leg runs (`solver_throughput --smoke`).
//
//   solver_throughput [--smoke] [--scale N] [--repeats N] [--max-jobs N]
//
// Output is a JSON document (checked in as BENCH_solver.json):
//
//   {"hardware_threads":1,"caveat":"single-core runner",
//    "lines_model":"one qualifier variable per modeled source line",
//    "workloads":[{"name":"layered_dag","vars":...,"constraints":...,
//      "old_seconds":...,"dense_seconds":...,"dense_speedup":...,
//      "lines_per_second":...,
//      "jobs":[{"jobs":1,"seconds":...,"speedup":...},...]},...],
//    "geomean_dense_speedup":...,"byte_identity":"ok"}
//
// dense_speedup is old/dense at -j1; headline_dense_speedup is the
// program-shaped layered_dag workload, the shape the dense trigger
// targets (the acceptance gate is >= 1.5x there). On the propagation-
// light topologies dense_speedup can dip below 1.0: the delta is the
// collapse/dedup/CSR rebuild the dense path runs unconditionally -- the
// same PR-1 amortization bet, repaid over a system's lifetime -- while
// old_eager_seconds shows the propagation core itself at parity or
// better on the identical layout. The jobs ladder speedup is relative to
// dense -j1. Parallel scaling requires hardware parallelism: on a
// single-core runner the ladder is measured for the record but flat by
// construction (see "caveat").
//
//===----------------------------------------------------------------------===//

#include "HostContext.h"

#include "qual/ConstraintSystem.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

using namespace quals;

namespace {

struct Lcg {
  uint64_t State;
  explicit Lcg(uint64_t Seed) : State(Seed ? Seed : 1) {}
  uint64_t next() {
    State = State * 6364136223846793005ull + 1442695040888963407ull;
    return State >> 11;
  }
  uint32_t below(uint32_t N) { return static_cast<uint32_t>(next() % N); }
};

/// Sixteen qualifiers: real const-inference systems seed lattice bits at
/// a sizable fraction of variables (every literal, decl, and cast site),
/// and the worklist's cost scales with how many distinct bits arrive at a
/// region at different times -- the effect the dense core removes.
QualifierSet makeQuals() {
  QualifierSet QS;
  QS.add("const", Polarity::Positive);
  QS.add("tainted", Polarity::Positive);
  QS.add("nonzero", Polarity::Negative);
  for (unsigned I = 3; I != 16; ++I)
    QS.add("q" + std::to_string(I), Polarity::Positive);
  return QS;
}

/// One random single-bit seed value out of the 16 qualifiers.
LatticeValue seedBit(Lcg &R) { return LatticeValue(1ull << R.below(16)); }

/// One synthetic constraint workload; Build populates a fresh system and
/// returns the modeled source-line count (one line per qualifier
/// variable; the solver-side analogue of batch_throughput's real lines).
struct Workload {
  const char *Name;
  std::function<unsigned(ConstraintSystem &, unsigned)> Build;
};

/// Program-shaped layered DAG: ~4 in-edges per variable from earlier
/// variables, seeds and caps sprinkled in. The common shape of const
/// inference over straight-line code.
unsigned buildLayeredDag(ConstraintSystem &Sys, unsigned N) {
  const QualifierSet &QS = Sys.getQualifierSet();
  Lcg R(11);
  std::vector<QualVarId> V;
  V.reserve(N);
  for (unsigned I = 0; I != N; ++I)
    V.push_back(Sys.freshVar("v"));
  for (unsigned I = 1; I != N; ++I)
    for (unsigned E = 0; E != 4; ++E)
      Sys.addLeq(QualExpr::makeVar(V[R.below(I)]), QualExpr::makeVar(V[I]),
                 {"edge"});
  for (unsigned S = 0; S != N / 20 + 1; ++S)
    Sys.addLeq(QualExpr::makeConst(seedBit(R)),
               QualExpr::makeVar(V[R.below(N)]), {"seed"});
  for (unsigned C = 0; C != N / 100 + 1; ++C)
    Sys.addLeq(QualExpr::makeVar(V[R.below(N)]),
               QualExpr::makeConst(QS.notQual(1)), {"cap"});
  return N;
}

/// A chain of rings: each 64-var ring feeds the next through a bridge, so
/// bits seeded upstream arrive at every downstream ring at different
/// times and the worklist re-walks each ring per arrival. Collapse folds
/// every ring to one representative; the dense pass sweeps the remaining
/// chain once per direction.
unsigned buildRingsAndChains(ConstraintSystem &Sys, unsigned N) {
  Lcg R(23);
  const unsigned Ring = 64;
  std::vector<QualVarId> V;
  V.reserve(N);
  for (unsigned I = 0; I != N; ++I)
    V.push_back(Sys.freshVar("v"));
  for (unsigned B = 0; B + Ring <= N; B += Ring) {
    for (unsigned I = 0; I != Ring; ++I)
      Sys.addLeq(QualExpr::makeVar(V[B + I]),
                 QualExpr::makeVar(V[B + (I + 1) % Ring]), {"ring"});
    if (B)
      Sys.addLeq(QualExpr::makeVar(V[B - R.below(Ring) - 1]),
                 QualExpr::makeVar(V[B + R.below(Ring)]), {"bridge"});
  }
  for (unsigned S = 0; S != N / 256 + 1; ++S)
    Sys.addLeq(QualExpr::makeConst(seedBit(R)),
               QualExpr::makeVar(V[R.below(N)]), {"seed"});
  return N;
}

/// A chain where every hop is stated 8 times -- dedup-heavy, as emitted
/// by constraint generators with one constraint per call site -- with
/// single-bit seeds scattered along it. Each scattered bit makes the
/// worklist re-walk the suffix over all eight parallel edges; the dense
/// pass dedups the edges and sweeps once.
unsigned buildDuplicateChain(ConstraintSystem &Sys, unsigned N) {
  Lcg R(31);
  QualVarId First = Sys.freshVar("v0");
  std::vector<QualVarId> V = {First};
  QualVarId Prev = First;
  for (unsigned I = 1; I != N; ++I) {
    QualVarId Next = Sys.freshVar("v");
    for (unsigned D = 0; D != 8; ++D)
      Sys.addLeq(QualExpr::makeVar(Prev), QualExpr::makeVar(Next), {"edge"});
    V.push_back(Next);
    Prev = Next;
  }
  for (unsigned S = 0; S != N / 100 + 1; ++S)
    Sys.addLeq(QualExpr::makeConst(seedBit(R)),
               QualExpr::makeVar(V[R.below(N)]), {"seed"});
  return N;
}

/// ~4 random edges per variable with no ordering: one giant SCC plus
/// tendrils. Collapse does most of the work; the dense pass sweeps what
/// is left.
unsigned buildSccBlob(ConstraintSystem &Sys, unsigned N) {
  Lcg R(37);
  std::vector<QualVarId> V;
  V.reserve(N);
  for (unsigned I = 0; I != N; ++I)
    V.push_back(Sys.freshVar("v"));
  for (unsigned I = 0; I != N; ++I)
    for (unsigned E = 0; E != 4; ++E)
      Sys.addLeq(QualExpr::makeVar(V[I]), QualExpr::makeVar(V[R.below(N)]),
                 {"edge"});
  for (unsigned S = 0; S != N / 20 + 1; ++S)
    Sys.addLeq(QualExpr::makeConst(seedBit(R)),
               QualExpr::makeVar(V[R.below(N)]), {"seed"});
  return N;
}

/// The old hot path for a bulk solve: the worklist engine at default
/// configuration. The pressure policy has earned no rebuild yet on a
/// first solve, so propagation runs over the pointer-chasing pending-list
/// layout -- exactly what every bulk ingest paid before the dense core.
SolverConfig oldConfig() {
  SolverConfig Config;
  Config.DenseSolve = false;
  return Config;
}

/// The worklist engine at the dense path's collapse state: eager rebuild,
/// dense core off. Both engines then pay the same collapse, dedup, and
/// CSR construction, so this ablation isolates the propagation core alone
/// (reported as old_eager_seconds, not the headline).
SolverConfig oldEagerConfig() {
  SolverConfig Config;
  Config.DenseSolve = false;
  Config.CollapseMinNewEdges = 1;
  Config.CollapsePressureFactor = 0;
  return Config;
}

SolverConfig denseConfig(unsigned Jobs, ThreadPool *Pool) {
  SolverConfig Config;
  Config.DenseSolve = true;
  Config.DenseMinNewEdges = 1;
  Config.Jobs = Jobs;
  Config.Pool = Pool;
  return Config;
}

/// Everything the tools render from a solved system, for byte-identity
/// gates: every bound plus every diagnostic.
std::string renderSolution(ConstraintSystem &Sys) {
  std::string Out;
  char Buf[64];
  for (QualVarId V = 0; V != Sys.getNumVars(); ++V) {
    std::snprintf(Buf, sizeof(Buf), "%u:%llx/%llx\n", V,
                  static_cast<unsigned long long>(Sys.lower(V).bits()),
                  static_cast<unsigned long long>(Sys.upper(V).bits()));
    Out += Buf;
  }
  for (const Violation &V : Sys.collectViolations())
    Out += Sys.explain(V);
  return Out;
}

/// The --stats counters compared across job counts (SolveSeconds is
/// wall-clock and excluded by construction).
std::string renderCounters(const SolverStats &S) {
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "vars=%u cons=%u edges=%u compact=%u solves=%u dense=%u "
                "collapses=%u sccs=%u merged=%u dedup=%llu self=%llu "
                "pushes=%llu visits=%llu",
                S.NumVars, S.NumConstraints, S.VarVarEdges, S.CompactEdges,
                S.SolveCalls, S.DensePasses, S.CollapsePasses,
                S.SccsCollapsed, S.VarsCollapsed,
                static_cast<unsigned long long>(S.EdgesDeduped),
                static_cast<unsigned long long>(S.SelfEdgesDropped),
                static_cast<unsigned long long>(S.WorklistPushes),
                static_cast<unsigned long long>(S.EdgeVisits));
  return Buf;
}

struct RunResult {
  double Seconds = 0;
  std::string Solution; ///< renderSolution bytes.
  std::string Counters; ///< renderCounters bytes.
  unsigned Lines = 0;
  unsigned Constraints = 0;
};

/// Builds the workload fresh and times solve() alone (construction cost
/// is identical across configurations); best of Repeats.
RunResult runOne(const QualifierSet &QS, const Workload &W, unsigned Size,
                 SolverConfig Config, unsigned Repeats) {
  RunResult Best;
  for (unsigned R = 0; R != Repeats; ++R) {
    ConstraintSystem Sys(QS, Config);
    unsigned Lines = W.Build(Sys, Size);
    Timer Wall;
    Sys.solve();
    double Seconds = Wall.seconds();
    if (R == 0 || Seconds < Best.Seconds) {
      Best.Seconds = Seconds;
      Best.Lines = Lines;
      Best.Constraints = Sys.getNumConstraints();
    }
    if (R == 0) {
      Best.Solution = renderSolution(Sys);
      Best.Counters = renderCounters(Sys.getStats());
    }
  }
  return Best;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Scale = 32768;
  unsigned Repeats = 3;
  unsigned Hw = bench::hardwareThreads();
  unsigned MaxJobs = std::max(4u, Hw);
  for (int I = 1; I != argc; ++I) {
    if (!std::strcmp(argv[I], "--smoke")) {
      // CI leg: small enough to finish in seconds, still crossing the
      // dense trigger and exercising every gate.
      Scale = 4096;
      Repeats = 1;
    } else if (!std::strcmp(argv[I], "--scale") && I + 1 < argc) {
      Scale = std::strtoul(argv[++I], nullptr, 10);
    } else if (!std::strcmp(argv[I], "--repeats") && I + 1 < argc) {
      Repeats = std::strtoul(argv[++I], nullptr, 10);
    } else if (!std::strcmp(argv[I], "--max-jobs") && I + 1 < argc) {
      MaxJobs = std::strtoul(argv[++I], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: solver_throughput [--smoke] [--scale N] "
                           "[--repeats N] [--max-jobs N]\n");
      return 1;
    }
  }

  QualifierSet QS = makeQuals();
  std::vector<Workload> Workloads = {
      {"layered_dag", buildLayeredDag},
      {"rings_and_chains", buildRingsAndChains},
      {"duplicate_chain", buildDuplicateChain},
      {"scc_blob", buildSccBlob},
  };
  // The dup chain states each edge 8 times; shrink its var count so total
  // constraint volume stays comparable.
  std::vector<unsigned> Sizes = {Scale, Scale, Scale / 4, Scale / 2};

  std::vector<unsigned> Ladder = {1};
  for (unsigned J = 2; J < MaxJobs; J *= 2)
    Ladder.push_back(J);
  if (MaxJobs > 1)
    Ladder.push_back(MaxJobs);

  std::string WorkloadsJson;
  double SpeedupLogSum = 0;
  double HeadlineSpeedup = 0;
  for (size_t WI = 0; WI != Workloads.size(); ++WI) {
    const Workload &W = Workloads[WI];
    unsigned Size = Sizes[WI];

    RunResult Old = runOne(QS, W, Size, oldConfig(), Repeats);
    RunResult OldEager = runOne(QS, W, Size, oldEagerConfig(), Repeats);
    RunResult Dense = runOne(QS, W, Size, denseConfig(1, nullptr), Repeats);

    // Gate 1: every layout agrees on every bound and diagnostic (bounds
    // and explanations are representative-agnostic, so this holds across
    // collapse states too).
    if (Old.Solution != Dense.Solution ||
        OldEager.Solution != Dense.Solution) {
      std::fprintf(stderr,
                   "solver_throughput: BYTE IDENTITY VIOLATION on '%s': "
                   "dense solution differs from worklist baseline\n",
                   W.Name);
      return 1;
    }

    std::string JobsJson;
    for (unsigned Jobs : Ladder) {
      RunResult R;
      if (Jobs == 1) {
        R = Dense;
      } else {
        ThreadPool Pool(Jobs);
        R = runOne(QS, W, Size, denseConfig(Jobs, &Pool), Repeats);
      }
      // Gate 2: every job count reproduces -j1's bounds, diagnostics, and
      // solver counters byte for byte.
      if (R.Solution != Dense.Solution || R.Counters != Dense.Counters) {
        std::fprintf(stderr,
                     "solver_throughput: BYTE IDENTITY VIOLATION on '%s' "
                     "at -j%u (%s)\n",
                     W.Name, Jobs,
                     R.Solution != Dense.Solution ? "solution/diagnostics"
                                                  : "stats counters");
        return 1;
      }
      char Buf[128];
      std::snprintf(Buf, sizeof(Buf),
                    "%s{\"jobs\":%u,\"seconds\":%.4f,\"speedup\":%.2f}",
                    JobsJson.empty() ? "" : ",", Jobs, R.Seconds,
                    R.Seconds > 0 ? Dense.Seconds / R.Seconds : 1.0);
      JobsJson += Buf;
    }

    double Speedup = Dense.Seconds > 0 ? Old.Seconds / Dense.Seconds : 1.0;
    SpeedupLogSum += std::log(Speedup);
    if (WI == 0) // layered_dag: the program-shaped headline workload.
      HeadlineSpeedup = Speedup;
    char Buf[640];
    std::snprintf(
        Buf, sizeof(Buf),
        "%s\n  {\"name\":\"%s\",\"vars\":%u,\"constraints\":%u,"
        "\"old_seconds\":%.4f,\"old_eager_seconds\":%.4f,"
        "\"dense_seconds\":%.4f,"
        "\"dense_speedup\":%.2f,\"lines_per_second\":%.0f,\n   \"jobs\":[%s]}",
        WorkloadsJson.empty() ? "" : ",", W.Name, Old.Lines, Old.Constraints,
        Old.Seconds, OldEager.Seconds, Dense.Seconds, Speedup,
        Dense.Seconds > 0 ? Old.Lines / Dense.Seconds : 0.0, JobsJson.c_str());
    WorkloadsJson += Buf;
    std::fprintf(stderr,
                 "%-18s old %8.4fs  eager %8.4fs  dense %8.4fs  "
                 "speedup %.2fx\n",
                 W.Name, Old.Seconds, OldEager.Seconds, Dense.Seconds,
                 Speedup);
  }

  double Geomean = std::exp(SpeedupLogSum / Workloads.size());
  if (HeadlineSpeedup < 1.5)
    std::fprintf(stderr,
                 "solver_throughput: WARNING: headline dense speedup %.2fx "
                 "below the 1.5x target (noise, or a regression?)\n",
                 HeadlineSpeedup);
  std::printf("{%s\n"
              " \"lines_model\":\"one qualifier variable per modeled source "
              "line\",\n"
              " \"workloads\":[%s\n],\n"
              " \"headline\":\"layered_dag\","
              "\"headline_dense_speedup\":%.2f,\n"
              " \"geomean_dense_speedup\":%.2f,\"byte_identity\":\"ok\"}\n",
              bench::hardwareThreadsJson().c_str(),
              WorkloadsJson.c_str(), HeadlineSpeedup, Geomean);
  return 0;
}

//===- bench/server_qps.cpp - Sustained multi-client QPS benchmark ---------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
//
// Measures what the socket transport and the sharded ResultCache buy
// under sustained multi-client traffic: one in-process qualsd (unix-domain
// socket) serves C concurrent connections, each synchronously streaming
// analyze requests over a warm corpus (send one line, read one response --
// the editor-integration pattern), for C in {1, 2, 4, 8}. The headline is
// queries per second at each concurrency level; the correctness bar is
// that every connection's response bytes equal a single-client stdio run
// of the same request stream (abort, not a result, otherwise).
//
//   server_qps [--files N] [--lines N] [--requests N] [--smoke]
//
// Output is a JSON document (the "qps" half of BENCH_server.json):
//
//   {"files":24,"lines_per_file":120,"requests_per_client":200,
//    "hardware_threads":8,"transport":"unix",
//    "concurrency":[{"clients":1,"seconds":...,"qps":...},...],
//    "responses_identical":true}
//
// Honest-scaling guard: hardware_threads is recorded, and on a 1-thread
// runner the document carries "caveat":"single-core runner" -- concurrent
// connections cannot scale there, so the C>1 rows measure multiplexing
// overhead, not parallel speedup. --smoke shrinks the corpus for the
// perf-smoke CI leg, which runs this gate on every Release build.
//
//===----------------------------------------------------------------------===//

#include "HostContext.h"

#include "gen/SynthGen.h"
#include "serve/Protocol.h"
#include "serve/Server.h"
#include "serve/Transport.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace quals;
using namespace quals::serve;

namespace {

int connectUnix(const std::string &Path) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

bool sendAll(int Fd, const char *P, size_t N) {
  while (N) {
    ssize_t W = ::send(Fd, P, N, MSG_NOSIGNAL);
    if (W <= 0) {
      if (W < 0 && errno == EINTR)
        continue;
      return false;
    }
    P += W;
    N -= static_cast<size_t>(W);
  }
  return true;
}

/// Appends bytes to \p Out until it contains one more '\n' than before;
/// returns false on EOF/error.
bool recvLine(int Fd, std::string &Out) {
  char Buf[4096];
  for (;;) {
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      return false;
    Out.append(Buf, static_cast<size_t>(N));
    if (std::memchr(Buf, '\n', static_cast<size_t>(N)))
      return true;
  }
}

} // namespace

int main(int argc, char **argv) {
  unsigned Files = 24;
  unsigned Lines = 120;
  unsigned RequestsPerClient = 200;
  uint64_t Seed = 1004;
  std::vector<unsigned> Concurrency = {1, 2, 4, 8};
  for (int I = 1; I != argc; ++I) {
    if (!std::strcmp(argv[I], "--files") && I + 1 < argc)
      Files = std::strtoul(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--lines") && I + 1 < argc)
      Lines = std::strtoul(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--requests") && I + 1 < argc)
      RequestsPerClient = std::strtoul(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--smoke")) {
      Files = 8;
      Lines = 60;
      RequestsPerClient = 32;
      Concurrency = {1, 2, 4};
    } else {
      std::fprintf(stderr, "usage: server_qps [--files N] [--lines N] "
                           "[--requests N] [--smoke]\n");
      return 1;
    }
  }

  // The corpus: one request line per synthetic program. A client's stream
  // walks the corpus round-robin with per-stream ids, so stream bytes are
  // a pure function of (client index, request count) -- exactly
  // reproducible over stdio for the identity gate.
  std::vector<std::string> Corpus(Files);
  for (unsigned I = 0; I != Files; ++I) {
    synth::SynthProgram Prog =
        synth::generateProgram(synth::corpusFileParams(Seed, I, Lines));
    std::string &Req = Corpus[I];
    Req = "{\"method\":\"analyze\",\"params\":{\"source\":";
    appendJsonString(Req, Prog.Source);
    Req += ",\"name\":";
    appendJsonString(Req, synth::corpusFileName(I));
    Req += "}}\n";
  }
  auto streamFor = [&](unsigned Client) {
    std::string Stream;
    for (unsigned R = 0; R != RequestsPerClient; ++R) {
      const std::string &Base = Corpus[(Client + R) % Files];
      // Per-request id: splice {"id":N, in front of "method".
      Stream += "{\"id\":" + std::to_string(R) + "," + Base.substr(1);
    }
    return Stream;
  };

  // The served configuration: connections are the parallelism axis
  // (docs/PARALLEL.md), so the server runs sessions inline and the corpus
  // is warmed once up front -- sustained traffic then measures the
  // protocol loop and the sharded cache's hit path, which is what a warm
  // fleet-serving daemon spends its life doing.
  ServerConfig Config;
  Server S(Config);
  {
    std::string Warm;
    for (const std::string &Req : Corpus)
      Warm += Req;
    std::istringstream In(Warm);
    std::ostringstream Out;
    if (S.run(In, Out) != 0) {
      std::fprintf(stderr, "server_qps: warm pass failed\n");
      return 1;
    }
  }

  // Stdio references, computed against the same warm server (sessions are
  // serial here; responses are pure functions of content so warm/cold and
  // stdio/socket must agree byte for byte).
  unsigned MaxClients = 0;
  for (unsigned C : Concurrency)
    MaxClients = std::max(MaxClients, C);
  std::vector<std::string> Want(MaxClients);
  for (unsigned K = 0; K != MaxClients; ++K) {
    std::istringstream In(streamFor(K));
    std::ostringstream Out;
    if (S.run(In, Out) != 0) {
      std::fprintf(stderr, "server_qps: reference pass failed\n");
      return 1;
    }
    Want[K] = Out.str();
  }

  std::string SockPath =
      (std::filesystem::temp_directory_path() /
       ("quals_qps_" + std::to_string(::getpid()) + ".sock"))
          .string();
  ListenSpec Spec;
  Spec.K = ListenSpec::Kind::Unix;
  Spec.Path = SockPath;
  Transport T(S, Spec);
  std::string Error;
  if (!T.open(Error)) {
    std::fprintf(stderr, "server_qps: %s\n", Error.c_str());
    return 1;
  }
  std::thread Serve([&T] { T.serve(); });

  struct Row {
    unsigned Clients;
    double Seconds;
    double Qps;
  };
  std::vector<Row> Rows;
  bool Identical = true;
  for (unsigned C : Concurrency) {
    std::vector<std::string> Got(C);
    std::vector<std::thread> ClientThreads;
    Timer Wall;
    for (unsigned K = 0; K != C; ++K)
      ClientThreads.emplace_back([&, K] {
        int Fd = connectUnix(SockPath);
        if (Fd < 0)
          return;
        // Synchronous request/response: one line out, one line back --
        // QPS under per-connection serial latency, C-way concurrent.
        std::string Stream = streamFor(K);
        size_t Pos = 0;
        for (unsigned R = 0; R != RequestsPerClient; ++R) {
          size_t End = Stream.find('\n', Pos) + 1;
          if (!sendAll(Fd, Stream.data() + Pos, End - Pos) ||
              !recvLine(Fd, Got[K]))
            break;
          Pos = End;
        }
        ::close(Fd);
      });
    for (std::thread &Th : ClientThreads)
      Th.join();
    double Seconds = Wall.seconds();
    for (unsigned K = 0; K != C; ++K)
      if (Got[K] != Want[K]) {
        std::fprintf(stderr,
                     "server_qps: connection %u of %u diverged from its "
                     "stdio reference (%zu vs %zu bytes)\n",
                     K, C, Got[K].size(), Want[K].size());
        Identical = false;
      }
    Rows.push_back({C, Seconds,
                    Seconds > 0 ? C * RequestsPerClient / Seconds : 0.0});
  }

  T.stop();
  Serve.join();

  if (!Identical)
    return 1; // The gate: divergent bytes are a bug, not a benchmark result.

  std::printf("{\"files\":%u,\"lines_per_file\":%u,"
              "\"requests_per_client\":%u,%s",
              Files, Lines, RequestsPerClient,
              bench::hardwareThreadsJson().c_str());
  std::printf("\"transport\":\"unix\",\n \"concurrency\":[");
  for (size_t I = 0; I != Rows.size(); ++I)
    std::printf("%s{\"clients\":%u,\"seconds\":%.4f,\"qps\":%.0f}",
                I ? "," : "", Rows[I].Clients, Rows[I].Seconds,
                Rows[I].Qps);
  std::printf("],\"responses_identical\":true}\n");
  return 0;
}

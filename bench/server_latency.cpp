//===- bench/server_latency.cpp - Request-latency benchmark ---------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
//
// The latency baseline for qualsd's serving story: a sustained mixed
// workload -- cold analyzes, warm cache hits, an analyze-delta edit loop,
// and an invalidate -- is driven through the server three times:
//
//   (1) telemetry on,  -j1: the latency source. Per-method p50/p90/p99 are
//       read from the server.latency.* histograms afterwards.
//   (2) telemetry on,  -jN: the same stream on pool workers; its response
//       bytes must equal pass (1)'s exactly (the determinism contract:
//       telemetry never touches response bytes, at any worker count).
//   (3) telemetry off, -j1: the ablation. Bytes must again be identical,
//       and wall-clock (3) vs (1) bounds what the always-on histograms and
//       request log cost.
//
//   server_latency [--files N] [--lines N] [--edits K] [--jobs N] [--seed S]
//
// Output is a JSON document (checked in as BENCH_latency.json) with the
// per-method latency distributions, the telemetry overhead ratio, and the
// byte-identity verdicts. The run aborts (exit 1) if any pass's response
// stream differs from pass (1)'s, if a histogram's count disagrees with
// the number of requests served, or if the request log dropped an event --
// a latency number for a stream that broke determinism would be a bug, not
// a result. docs/OBSERVABILITY.md and docs/SERVER.md quote the outcome.
//
//===----------------------------------------------------------------------===//

#include "HostContext.h"

#include "gen/SynthGen.h"
#include "serve/Protocol.h"
#include "serve/Server.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

using namespace quals;
using namespace quals::serve;

namespace {

/// Functions per call cluster, mirroring bench/incremental_edit: one shared
/// leaf, three callers, clusters independent -- so a body edit stays on the
/// incremental path and the delta latencies measure the dirty-closure
/// machinery, not structural fallbacks.
constexpr unsigned kClusterSize = 4;

std::string buildEditUnit(unsigned Functions, int EditedFn) {
  std::string Src;
  Src.reserve(Functions * 64);
  char Line[160];
  for (unsigned I = 0; I != Functions; ++I) {
    unsigned Leaf = I - (I % kClusterSize);
    if (I == static_cast<unsigned>(EditedFn)) {
      std::snprintf(Line, sizeof(Line),
                    "int f%u(int **p, int *q) { int *a = *p; int x = *a + *q; "
                    "*q = x; return x + %u; }\n",
                    I, I);
    } else if (I == Leaf) {
      std::snprintf(Line, sizeof(Line),
                    "int f%u(int **p, int *q) { int *a = *p; int x = *a + *q; "
                    "return x + %u; }\n",
                    I, I);
    } else {
      std::snprintf(Line, sizeof(Line),
                    "int f%u(int **p, int *q) { return f%u(p, q) + %u; }\n", I,
                    Leaf, I);
    }
    Src += Line;
  }
  return Src;
}

void appendAnalyze(std::string &Requests, uint64_t Id, const char *Method,
                   const std::string &Source, const std::string &Name) {
  Requests += "{\"id\":" + std::to_string(Id) + ",\"method\":\"" + Method +
              "\",\"params\":{\"source\":";
  appendJsonString(Requests, Source);
  Requests += ",\"name\":";
  appendJsonString(Requests, Name);
  Requests += "}}\n";
}

/// One histogram's numbers, snapshotted before the next pass reuses the
/// process-global registry.
struct LatencySummary {
  uint64_t Count = 0;
  double MeanUs = 0;
  uint64_t P50 = 0, P90 = 0, P99 = 0;
};

LatencySummary summarize(const Histogram &H) {
  LatencySummary S;
  S.Count = H.count();
  S.MeanUs = H.mean();
  S.P50 = H.quantile(0.50);
  S.P90 = H.quantile(0.90);
  S.P99 = H.quantile(0.99);
  return S;
}

void printSummary(const char *Name, const LatencySummary &S, const char *Sep) {
  std::printf("  \"%s\":{\"count\":%llu,\"mean_us\":%.1f,\"p50_us\":%llu,"
              "\"p90_us\":%llu,\"p99_us\":%llu}%s\n",
              Name, static_cast<unsigned long long>(S.Count), S.MeanUs,
              static_cast<unsigned long long>(S.P50),
              static_cast<unsigned long long>(S.P90),
              static_cast<unsigned long long>(S.P99), Sep);
}

} // namespace

int main(int argc, char **argv) {
  unsigned Files = 40;
  unsigned Lines = 200;
  unsigned EditFunctions = 200;
  unsigned Edits = 10;
  unsigned Jobs = 4;
  uint64_t Seed = 1007;
  for (int I = 1; I != argc; ++I) {
    if (!std::strcmp(argv[I], "--files") && I + 1 < argc)
      Files = std::strtoul(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--lines") && I + 1 < argc)
      Lines = std::strtoul(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--edits") && I + 1 < argc)
      Edits = std::strtoul(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--jobs") && I + 1 < argc)
      Jobs = std::strtoul(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--seed") && I + 1 < argc)
      Seed = std::strtoull(argv[++I], nullptr, 10);
    else {
      std::fprintf(stderr, "usage: server_latency [--files N] [--lines N] "
                           "[--edits K] [--jobs N] [--seed S]\n");
      return 1;
    }
  }
  EditFunctions -= EditFunctions % kClusterSize;
  unsigned Clusters = EditFunctions / kClusterSize;

  // The mixed stream: cold corpus analyzes, the same corpus again (pure
  // cache hits), an analyze-delta edit loop against one retained snapshot,
  // and a full invalidate. No stats/metrics requests: every response in
  // the stream is a pure function of (source, config), so whole-stream
  // byte comparison across passes is exact.
  std::string Requests;
  uint64_t Id = 0;
  for (unsigned Pass = 0; Pass != 2; ++Pass)
    for (unsigned I = 0; I != Files; ++I) {
      synth::SynthProgram Prog =
          synth::generateProgram(synth::corpusFileParams(Seed, I, Lines));
      appendAnalyze(Requests, ++Id, "analyze", Prog.Source,
                    synth::corpusFileName(I));
    }
  appendAnalyze(Requests, ++Id, "analyze", buildEditUnit(EditFunctions, -1),
                "edit.c");
  for (unsigned E = 0; E != Edits; ++E) {
    unsigned Cluster = (E * 7 + 1) % Clusters;
    appendAnalyze(Requests, ++Id, "analyze-delta",
                  buildEditUnit(EditFunctions,
                                static_cast<int>(Cluster * kClusterSize)),
                  "edit.c");
  }
  Requests += "{\"id\":" + std::to_string(++Id) +
              ",\"method\":\"invalidate\"}\n";
  const uint64_t TotalRequests = Id;
  const uint64_t AnalyzeCount = 2 * static_cast<uint64_t>(Files) + 1;

  // One pass = one fresh server (cold cache) over the same stream.
  auto pass = [&Requests](unsigned PassJobs, bool Telemetry,
                          std::ostream *LogSink, std::string &Responses) {
    ServerConfig Config;
    Config.Jobs = PassJobs;
    Config.Telemetry = Telemetry;
    Config.RequestLogStream = LogSink;
    Server S(Config);
    std::istringstream In(Requests);
    std::ostringstream Out;
    Timer T;
    int Exit = S.run(In, Out);
    double Seconds = T.seconds();
    if (Exit != 0) {
      std::fprintf(stderr, "server_latency: run() exited %d\n", Exit);
      std::exit(1);
    }
    Responses = Out.str();
    return Seconds;
  };

  Timer Wall;
  MetricsRegistry &Reg = MetricsRegistry::global();

  // Pass 1: telemetry on, -j1 -- the latency source.
  Reg.resetValues();
  std::ostringstream Log1;
  std::string Baseline;
  double OnSeconds = pass(1, /*Telemetry=*/true, &Log1, Baseline);
  LatencySummary Analyze = summarize(Reg.histogram("server.latency.analyze"));
  LatencySummary Delta =
      summarize(Reg.histogram("server.latency.analyze-delta"));
  LatencySummary Invalidate =
      summarize(Reg.histogram("server.latency.invalidate"));
  LatencySummary QueueWait = summarize(Reg.histogram("server.queue_wait"));

  // Pass 2: telemetry on, -jN -- must be byte-identical to -j1.
  Reg.resetValues();
  std::ostringstream Log2;
  std::string Parallel;
  pass(Jobs, /*Telemetry=*/true, &Log2, Parallel);

  // Pass 3: telemetry off, -j1 -- the ablation.
  std::string Dark;
  double OffSeconds = pass(1, /*Telemetry=*/false, nullptr, Dark);

  bool Identical = Parallel == Baseline && Dark == Baseline;
  auto countLines = [](const std::string &S) {
    return static_cast<uint64_t>(std::count(S.begin(), S.end(), '\n'));
  };
  uint64_t LogEvents1 = countLines(Log1.str());
  uint64_t LogEvents2 = countLines(Log2.str());
  if (!Identical || Analyze.Count != AnalyzeCount || Delta.Count != Edits ||
      Invalidate.Count != 1 || QueueWait.Count != AnalyzeCount + Edits ||
      LogEvents1 != TotalRequests || LogEvents2 != TotalRequests) {
    std::fprintf(stderr,
                 "server_latency: determinism or accounting violation "
                 "(identical=%d analyze=%llu/%llu delta=%llu/%u "
                 "invalidate=%llu log=%llu,%llu/%llu)\n",
                 Identical, static_cast<unsigned long long>(Analyze.Count),
                 static_cast<unsigned long long>(AnalyzeCount),
                 static_cast<unsigned long long>(Delta.Count), Edits,
                 static_cast<unsigned long long>(Invalidate.Count),
                 static_cast<unsigned long long>(LogEvents1),
                 static_cast<unsigned long long>(LogEvents2),
                 static_cast<unsigned long long>(TotalRequests));
    return 1;
  }

  // Honest-scaling guard: record the runner's parallelism next to any
  // jobs comparison, and flag single-core runners where no cross-worker
  // scaling is observable (docs/PARALLEL.md).
  std::printf("{\"files\":%u,\"lines_per_file\":%u,\"edits\":%u,"
              "\"requests\":%llu,\"jobs_compared\":%u,"
              "%s\n"
              " \"telemetry_on_seconds\":%.4f,\"telemetry_off_seconds\":%.4f,"
              "\"telemetry_overhead\":%.3f,\n"
              " \"request_log_events\":%llu,\"wall_seconds\":%.4f,\n"
              " \"latency_us\":{\n",
              Files, Lines, Edits,
              static_cast<unsigned long long>(TotalRequests), Jobs,
              bench::hardwareThreadsJson().c_str(),
              OnSeconds, OffSeconds,
              OffSeconds > 0 ? OnSeconds / OffSeconds : 0.0,
              static_cast<unsigned long long>(LogEvents1), Wall.seconds());
  printSummary("analyze", Analyze, ",");
  printSummary("analyze-delta", Delta, ",");
  printSummary("invalidate", Invalidate, ",");
  printSummary("queue_wait", QueueWait, "},");
  std::printf(" \"responses_identical\":true}\n");
  return 0;
}

//===- bench/BenchUtil.h - Shared benchmark-suite definitions ---*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark suite shared by the Table 1 / Table 2 / Figure 6 harnesses.
/// The paper's programs (Table 1) are not redistributable/available offline,
/// so each is replaced by a deterministic synthetic program at the same line
/// count with a const-annotation density tuned to the paper's Declared/Total
/// ratio (see DESIGN.md, "Substitutions"). Every harness regenerates the
/// same programs bit-for-bit from the fixed seeds.
///
//===----------------------------------------------------------------------===//

#ifndef QUALS_BENCH_BENCHUTIL_H
#define QUALS_BENCH_BENCHUTIL_H

#include "cfront/CParser.h"
#include "cfront/CSema.h"
#include "constinf/ConstInfer.h"
#include "gen/SynthGen.h"
#include "support/Timer.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

namespace quals {
namespace bench {

/// One entry of the paper's Table 1, with the synthetic stand-in's knobs.
struct BenchmarkSpec {
  const char *Name;
  unsigned PaperLines;
  const char *Description;
  uint64_t Seed;
  double ConstDeclRate;   ///< Tuned toward the paper's Declared/Total ratio.
  double WriterRate;      ///< Tuned toward the paper's Mono/Total ratio.
  double LibraryCallRate; ///< Likewise (library calls pin positions).
  // Paper reference numbers (Table 2) for side-by-side reporting.
  unsigned PaperDeclared;
  unsigned PaperMono;
  unsigned PaperPoly;
  unsigned PaperTotal;
};

/// The six benchmarks of Table 1.
inline const std::vector<BenchmarkSpec> &suite() {
  static const std::vector<BenchmarkSpec> Suite = {
      {"woman-3.0a", 1496, "Replacement for man package", 1001,
       0.92, 0.62, 0.30, 50, 67, 72, 95},
      {"patch-2.5", 5303, "Apply a diff file to an original", 1002,
       0.98, 0.62, 0.28, 84, 99, 107, 148},
      {"m4-1.4", 7741, "Unix macro preprocessor", 1003,
       0.42, 0.44, 0.18, 88, 249, 262, 370},
      {"diffutils-2.7", 8741, "Collection of utilities for diffing files",
       1004, 0.85, 0.78, 0.40, 153, 209, 243, 372},
      {"ssh-1.2.26", 18620, "Secure shell", 1005,
       0.50, 0.63, 0.32, 147, 316, 347, 547},
      {"uucp-1.04", 36913, "Unix to unix copy package", 1006,
       0.44, 0.55, 0.28, 433, 1116, 1299, 1773},
  };
  return Suite;
}

/// Generates the synthetic stand-in for \p Spec.
inline synth::SynthProgram generate(const BenchmarkSpec &Spec) {
  synth::SynthParams P = synth::paramsForLines(Spec.Seed, Spec.PaperLines);
  P.ConstDeclRate = Spec.ConstDeclRate;
  P.WriterRate = Spec.WriterRate;
  P.LibraryCallRate = Spec.LibraryCallRate;
  return synth::generateProgram(P);
}

/// Front-end state for one analyzed program (kept alive for the inference).
struct Compiled {
  SourceManager SM;
  std::unique_ptr<DiagnosticEngine> Diags;
  cfront::CAstContext Ast;
  cfront::CTypeContext Types;
  StringInterner Idents;
  cfront::TranslationUnit TU;
  double CompileSeconds = 0;
  bool Ok = false;

  Compiled() : Diags(std::make_unique<DiagnosticEngine>(SM)) {}
};

/// Parses and analyzes \p Source, timing the front end ("compile time").
inline std::unique_ptr<Compiled> compile(const std::string &Name,
                                         const std::string &Source) {
  auto C = std::make_unique<Compiled>();
  Timer T;
  bool ParseOk = cfront::parseCSource(C->SM, Name, Source, C->Ast, C->Types,
                                      C->Idents, *C->Diags, C->TU);
  cfront::CSema Sema(C->Ast, C->Types, C->Idents, *C->Diags);
  bool SemaOk = Sema.analyze(C->TU);
  C->CompileSeconds = T.seconds();
  C->Ok = ParseOk && SemaOk;
  if (!C->Ok)
    std::fprintf(stderr, "front end failed on %s:\n%s\n", Name.c_str(),
                 C->Diags->renderAll().c_str());
  return C;
}

/// Result of one inference run.
struct InferRun {
  double Seconds = 0;
  bool Ok = false;
  constinf::ConstCounts Counts;
  unsigned NumVars = 0;
  unsigned NumConstraints = 0;
  SolverStats Stats; ///< Solver instrumentation from the first repeat.
};

/// Runs const inference over \p C, timed; averaged over \p Repeats runs as
/// in the paper ("average of five"). \p CollapseCycles toggles the solver's
/// SCC collapsing for the scaling ablation; \p CollapsePressureFactor tunes
/// its rebuild eagerness (0 = rebuild every solve).
inline InferRun inferTimed(Compiled &C, bool Polymorphic,
                           unsigned Repeats = 5, bool CollapseCycles = true,
                           unsigned CollapsePressureFactor = 2) {
  InferRun Run;
  double Total = 0;
  for (unsigned I = 0; I != Repeats; ++I) {
    constinf::ConstInference::Options Opts;
    Opts.Polymorphic = Polymorphic;
    Opts.CollapseCycles = CollapseCycles;
    Opts.CollapsePressureFactor = CollapsePressureFactor;
    constinf::ConstInference Inf(C.TU, *C.Diags, Opts);
    Timer T;
    Run.Ok = Inf.run();
    Total += T.seconds();
    if (!Run.Ok) {
      std::fprintf(stderr, "inference failed:\n%s\n",
                   C.Diags->renderAll().c_str());
      return Run;
    }
    if (I == 0) {
      Run.Counts = Inf.counts();
      Run.NumVars = Inf.numQualVars();
      Run.NumConstraints = Inf.numConstraints();
      Run.Stats = Inf.solverStats();
    }
  }
  Run.Seconds = Total / Repeats;
  return Run;
}

/// Formats a double with \p Digits decimals.
inline std::string fmt(double Value, int Digits = 2) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Digits, Value);
  return Buf;
}

} // namespace bench
} // namespace quals

#endif // QUALS_BENCH_BENCHUTIL_H

//===- bench/link_throughput.cpp - Cross-TU link benchmark ----------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
//
// Measures the separate-compilation pipeline end to end: a qualgen TU
// split is summarized per TU on the thread pool (the `qualcc
// --emit-summary` path, serialize + deserialize included so the bytes on
// the wire are what gets timed), then linked and globally solved at a
// sweep of --solver-jobs values. The headline numbers are the per-TU
// summarize throughput and the -jN link speedup over -j1.
//
//   link_throughput [--smoke] [--tus N] [--lines N] [--max-jobs N] [--seed S]
//
// Output is a JSON document (checked in as BENCH_link.json):
//
//   {"tus":16,"lines":12000,"summary_bytes":...,"hardware_threads":8,
//    "summarize_seconds":...,"link_seconds":{"j1":...,"j4":...},
//    "speedup_best":...,"wall_seconds":...,"identical":true}
//
// The run aborts (exit 1) if any job count's linked classification -- the
// full rendered position listing and counts banner -- differs from the
// -j1 bytes, or if a reversed summary order changes them: a fast link
// that broke the determinism contract (docs/LINK.md) would be a bug, not
// a result. `--smoke` runs the small configuration as ctest's
// perf.link_smoke gate.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "HostContext.h"

#include "gen/SynthGen.h"
#include "link/Linker.h"
#include "link/Qsum.h"
#include "link/SummaryBuilder.h"
#include "support/Hash.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace quals;

namespace {

/// Renders a link result the way quallink --positions does, so byte
/// comparison across job counts covers every classification and count.
std::string render(const link::LinkResult &R) {
  std::string Out;
  char Line[256];
  for (const link::LinkedPos &P : R.Positions) {
    std::snprintf(Line, sizeof(Line), "%s param %d depth %u class %d%s\n",
                  P.FnName.c_str(), P.ParamIndex, P.Depth,
                  static_cast<int>(P.Class),
                  P.DeclaredConst ? " [declared]" : "");
    Out += Line;
  }
  std::snprintf(Line, sizeof(Line),
                "declared %u possible-const %u total %u vars %u cons %u\n",
                R.Counts.Declared, R.Counts.PossibleConst, R.Counts.Total,
                R.NumVars, R.NumConstraints);
  Out += Line;
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Tus = 16;
  unsigned Lines = 12000;
  unsigned MaxJobs = 4;
  uint64_t Seed = 1009;
  for (int I = 1; I != argc; ++I) {
    if (!std::strcmp(argv[I], "--smoke")) {
      Tus = 4;
      Lines = 1200;
    } else if (!std::strcmp(argv[I], "--tus") && I + 1 < argc)
      Tus = std::strtoul(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--lines") && I + 1 < argc)
      Lines = std::strtoul(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--max-jobs") && I + 1 < argc)
      MaxJobs = std::strtoul(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--seed") && I + 1 < argc)
      Seed = std::strtoull(argv[++I], nullptr, 10);
    else {
      std::fprintf(stderr, "usage: link_throughput [--smoke] [--tus N] "
                           "[--lines N] [--max-jobs N] [--seed S]\n");
      return 1;
    }
  }
  if (Tus == 0 || MaxJobs == 0) {
    std::fprintf(stderr, "link_throughput: nothing to measure\n");
    return 1;
  }

  Timer Wall;
  std::vector<synth::SynthProgram> Programs =
      synth::generateTuSplit(synth::paramsForLines(Seed, Lines), Tus);

  // Per-TU summarize on the pool: front end, summary-mode inference,
  // build, then a serialize/deserialize round trip -- the link inputs are
  // the decoded wire bytes, exactly as quallink sees them.
  ThreadPool Pool(std::min(MaxJobs, ThreadPool::defaultWorkers()));
  std::vector<link::TuSummary> Wire(Tus);
  std::vector<size_t> Bytes(Tus, 0);
  std::vector<bool> SumOk(Tus, false);
  Timer SummarizeT;
  Pool.parallelForEach(Tus, [&](size_t I) {
    std::string Name = synth::tuFileName(static_cast<unsigned>(I));
    auto C = bench::compile(Name, Programs[I].Source);
    if (!C->Ok)
      return;
    constinf::ConstInference::Options Opts;
    Opts.Polymorphic = false; // Summary interfaces are monomorphic.
    Opts.SummaryMode = true;
    constinf::ConstInference Inf(C->TU, *C->Diags, Opts);
    if (!Inf.run())
      return;
    link::TuSummary S = link::buildSummary(
        Inf, C->SM, Name,
        hashBytes(Programs[I].Source.data(), Programs[I].Source.size()),
        link::summaryConfigHash());
    std::string Blob = link::serializeSummary(S);
    Bytes[I] = Blob.size();
    std::string Error;
    SumOk[I] = link::deserializeSummary(
        reinterpret_cast<const uint8_t *>(Blob.data()), Blob.size(), Wire[I],
        Error);
    if (!SumOk[I])
      std::fprintf(stderr, "link_throughput: %s: %s\n", Name.c_str(),
                   Error.c_str());
  });
  double SummarizeSeconds = SummarizeT.seconds();
  size_t TotalBytes = 0;
  for (unsigned I = 0; I != Tus; ++I) {
    if (!SumOk[I]) {
      std::fprintf(stderr, "link_throughput: TU %u failed to summarize\n", I);
      return 1;
    }
    TotalBytes += Bytes[I];
  }

  // The global solve at each job count. linkSummaries canonicalizes its
  // input vector in place, so every run gets a fresh copy.
  std::vector<unsigned> JobCounts;
  for (unsigned J = 1; J <= MaxJobs; J *= 2)
    JobCounts.push_back(J);
  std::string Baseline;
  std::string LinkJson;
  double J1Seconds = 0, BestSeconds = 0;
  for (unsigned J : JobCounts) {
    link::LinkOptions Opts;
    Opts.SolverJobs = J;
    Opts.Pool = &Pool;
    std::vector<link::TuSummary> Input = Wire;
    Timer T;
    link::LinkResult R = link::linkSummaries(Input, Opts);
    double Seconds = T.seconds();
    if (!R.LoadOk || !R.LinkOk || !R.SolveOk) {
      std::fprintf(stderr, "link_throughput: link failed at -j%u:\n", J);
      for (const std::string &D : R.Diagnostics)
        std::fprintf(stderr, "%s\n", D.c_str());
      return 1;
    }
    std::string Rendered = render(R);
    if (J == 1) {
      Baseline = Rendered;
      J1Seconds = BestSeconds = Seconds;
    } else if (Rendered != Baseline) {
      std::fprintf(stderr,
                   "link_throughput: -j%u classification differs from -j1\n",
                   J);
      return 1;
    }
    BestSeconds = std::min(BestSeconds, Seconds);
    LinkJson += (J == JobCounts.front() ? "" : ",") + std::string("\"j") +
                std::to_string(J) + "\":" + bench::fmt(Seconds, 4);
  }

  // Argument-order independence: linking the summaries reversed must
  // produce the same bytes.
  {
    std::vector<link::TuSummary> Reversed(Wire.rbegin(), Wire.rend());
    link::LinkOptions Opts;
    link::LinkResult R = link::linkSummaries(Reversed, Opts);
    if (!R.SolveOk || render(R) != Baseline) {
      std::fprintf(stderr,
                   "link_throughput: reversed summary order changed the "
                   "classification\n");
      return 1;
    }
  }

  // hardware_threads and wall_seconds keep the numbers honest across
  // runners (docs/PARALLEL.md).
  std::printf("{\"tus\":%u,\"lines\":%u,\"summary_bytes\":%zu,"
              "%s\n"
              " \"summarize_seconds\":%.4f,\"link_seconds\":{%s},"
              "\"speedup_best\":%.2f,\n"
              " \"wall_seconds\":%.4f,\"identical\":true}\n",
              Tus, Lines, TotalBytes, bench::hardwareThreadsJson().c_str(),
              SummarizeSeconds, LinkJson.c_str(),
              BestSeconds > 0 ? J1Seconds / BestSeconds : 0.0, Wall.seconds());
  return 0;
}

//===- bench/fig6_inferred_consts.cpp - Regenerates Figure 6 ---------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 6: for each benchmark, the stacked percentage
/// breakdown of interesting const positions into Declared (present in the
/// source), Mono (additionally inferred by monomorphic analysis), Poly
/// (additionally allowed by polymorphic analysis), and Other (must not be
/// const). Rendered as percentage series plus ASCII stacked bars.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "support/TextTable.h"

#include <cstdio>

using namespace quals;
using namespace quals::bench;

int main() {
  std::printf("Figure 6: Number of inferred consts for benchmarks\n");
  std::printf("(stacked percentages of total possible const positions)\n\n");

  TextTable T;
  T.addColumn("Name");
  T.addColumn("Declared %", Align::Right);
  T.addColumn("Mono %", Align::Right);
  T.addColumn("Poly %", Align::Right);
  T.addColumn("Other %", Align::Right);
  T.addColumn("[paper %]");

  struct Row {
    std::string Name;
    double Declared, Mono, Poly, Other;
  };
  std::vector<Row> Rows;

  bool AllOk = true;
  for (const BenchmarkSpec &Spec : suite()) {
    synth::SynthProgram Prog = generate(Spec);
    auto C = compile(Spec.Name, Prog.Source);
    if (!C->Ok) {
      AllOk = false;
      continue;
    }
    InferRun Mono = inferTimed(*C, /*Polymorphic=*/false, /*Repeats=*/1);
    InferRun Poly = inferTimed(*C, /*Polymorphic=*/true, /*Repeats=*/1);
    if (!Mono.Ok || !Poly.Ok) {
      AllOk = false;
      continue;
    }
    double Total = Mono.Counts.Total;
    Row R;
    R.Name = Spec.Name;
    R.Declared = 100.0 * Mono.Counts.Declared / Total;
    R.Mono =
        100.0 * (Mono.Counts.PossibleConst - Mono.Counts.Declared) / Total;
    R.Poly = 100.0 *
             (Poly.Counts.PossibleConst - Mono.Counts.PossibleConst) / Total;
    R.Other = 100.0 - R.Declared - R.Mono - R.Poly;
    Rows.push_back(R);

    double PTotal = Spec.PaperTotal;
    std::string PaperRef =
        fmt(100.0 * Spec.PaperDeclared / PTotal, 0) + "/" +
        fmt(100.0 * (Spec.PaperMono - Spec.PaperDeclared) / PTotal, 0) +
        "/" + fmt(100.0 * (Spec.PaperPoly - Spec.PaperMono) / PTotal, 0) +
        "/" + fmt(100.0 * (PTotal - Spec.PaperPoly) / PTotal, 0);
    T.addRow({R.Name, fmt(R.Declared, 1), fmt(R.Mono, 1), fmt(R.Poly, 1),
              fmt(R.Other, 1), PaperRef});
  }
  std::printf("%s\n", T.render().c_str());

  std::printf("Stacked bars (D = declared, M = +mono, P = +poly, . = "
              "other):\n\n");
  for (const Row &R : Rows) {
    std::string Bar = renderStackedBar({{"Declared", R.Declared / 100, 'D'},
                                        {"Mono", R.Mono / 100, 'M'},
                                        {"Poly", R.Poly / 100, 'P'},
                                        {"Other", R.Other / 100, '.'}},
                                       60);
    std::printf("  %-14s |%s|\n", R.Name.c_str(), Bar.c_str());
  }
  std::printf("\n");
  return AllOk ? 0 : 1;
}

//===- tests/lambda_front_test.cpp - Lexer/parser/std-typecheck tests -----===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "LambdaTestUtil.h"

#include <gtest/gtest.h>

using namespace quals;
using namespace quals::lambda;

namespace {

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(LambdaLexer, TokenizesKeywordsAndPunctuation) {
  Rig R;
  unsigned Id = R.SM.addBuffer("t.q", "fn x . let if then else fi ref ! := "
                                      "= | ~ { } ( ) 42 foo ni in");
  Lexer L(R.SM, Id, R.Diags);
  std::vector<TokKind> Kinds;
  for (Token T = L.next(); !T.is(TokKind::Eof); T = L.next())
    Kinds.push_back(T.Kind);
  std::vector<TokKind> Expected = {
      TokKind::KwFn,   TokKind::Ident,  TokKind::Dot,    TokKind::KwLet,
      TokKind::KwIf,   TokKind::KwThen, TokKind::KwElse, TokKind::KwFi,
      TokKind::KwRef,  TokKind::Bang,   TokKind::Assign, TokKind::Eq,
      TokKind::Pipe,   TokKind::Tilde,  TokKind::LBrace, TokKind::RBrace,
      TokKind::LParen, TokKind::RParen, TokKind::IntLit, TokKind::Ident,
      TokKind::KwNi,   TokKind::KwIn};
  EXPECT_EQ(Kinds, Expected);
  EXPECT_FALSE(R.Diags.hasErrors());
}

TEST(LambdaLexer, SkipsCommentsAndTracksIntValues) {
  Rig R;
  unsigned Id = R.SM.addBuffer("t.q", "# a comment\n 123 # another\n456");
  Lexer L(R.SM, Id, R.Diags);
  Token T1 = L.next();
  EXPECT_EQ(T1.IntValue, 123);
  Token T2 = L.next();
  EXPECT_EQ(T2.IntValue, 456);
  EXPECT_TRUE(L.next().is(TokKind::Eof));
}

TEST(LambdaLexer, ReportsUnexpectedCharacters) {
  Rig R;
  unsigned Id = R.SM.addBuffer("t.q", "$$");
  Lexer L(R.SM, Id, R.Diags);
  EXPECT_TRUE(L.next().is(TokKind::Error));
  EXPECT_TRUE(R.Diags.hasErrors());
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TEST(LambdaParser, ApplicationIsLeftAssociative) {
  Rig R;
  const Expr *E = R.parse("f x y");
  ASSERT_NE(E, nullptr);
  const auto *Outer = dyn_cast<AppExpr>(E);
  ASSERT_NE(Outer, nullptr);
  const auto *Inner = dyn_cast<AppExpr>(Outer->getFn());
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(cast<VarExpr>(Inner->getFn())->getName(), "f");
  EXPECT_EQ(cast<VarExpr>(Outer->getArg())->getName(), "y");
}

TEST(LambdaParser, LambdaBodyExtendsRight) {
  Rig R;
  const Expr *E = R.parse("fn x. f x");
  ASSERT_NE(E, nullptr);
  const auto *L = dyn_cast<LambdaExpr>(E);
  ASSERT_NE(L, nullptr);
  EXPECT_TRUE(isa<AppExpr>(L->getBody()));
}

TEST(LambdaParser, LetWithOptionalNi) {
  Rig R;
  EXPECT_NE(R.parse("let x = 1 in x ni"), nullptr);
  Rig R2;
  EXPECT_NE(R2.parse("let x = 1 in x"), nullptr);
}

TEST(LambdaParser, PaperStyleNestedLets) {
  // The paper's Section 3.2 example shape.
  Rig R;
  const Expr *E = R.parse("let id = fn x. x in "
                          "let y = id (ref 1) in "
                          "let z = id ({const} ref 1) in "
                          "() ni ni ni");
  ASSERT_NE(E, nullptr) << R.Diags.renderAll();
  EXPECT_TRUE(isa<LetExpr>(E));
}

TEST(LambdaParser, AnnotationBindsTightly) {
  Rig R;
  const Expr *E = R.parse("f {const} x");
  ASSERT_NE(E, nullptr);
  const auto *A = dyn_cast<AppExpr>(E);
  ASSERT_NE(A, nullptr);
  EXPECT_TRUE(isa<AnnotExpr>(A->getArg()));
}

TEST(LambdaParser, AssertionPostfix) {
  Rig R;
  const Expr *E = R.parse("(!x)|{nonzero}");
  ASSERT_NE(E, nullptr);
  const auto *A = dyn_cast<AssertExpr>(E);
  ASSERT_NE(A, nullptr);
  EXPECT_TRUE(isa<DerefExpr>(A->getOperand()));
  EXPECT_TRUE(R.QS.contains(A->getBound(), R.Nonzero));
}

TEST(LambdaParser, TildeQualifierListStartsFromTop) {
  Rig R;
  const Expr *E = R.parse("x |{~const}");
  ASSERT_NE(E, nullptr);
  const auto *A = dyn_cast<AssertExpr>(E);
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(A->getBound(), R.QS.notQual(R.Const));
}

TEST(LambdaParser, PlainQualifierListStartsFromBottom) {
  Rig R;
  const Expr *E = R.parse("{const nonzero} 1");
  ASSERT_NE(E, nullptr);
  const auto *A = dyn_cast<AnnotExpr>(E);
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(A->getQual(), R.QS.valueWithPresent({R.Const, R.Nonzero}));
}

TEST(LambdaParser, RejectsUnknownQualifier) {
  Rig R;
  EXPECT_EQ(R.parse("{sorted} 1"), nullptr);
  EXPECT_TRUE(R.Diags.hasErrors());
}

TEST(LambdaParser, RejectsDanglingInput) {
  Rig R;
  EXPECT_EQ(R.parse("x )"), nullptr);
}

TEST(LambdaParser, UnitLiteralAndParens) {
  Rig R;
  const Expr *E = R.parse("(fn x. ()) 3");
  ASSERT_NE(E, nullptr);
  const auto *A = dyn_cast<AppExpr>(E);
  ASSERT_NE(A, nullptr);
  EXPECT_TRUE(isa<UnitLitExpr>(cast<LambdaExpr>(A->getFn())->getBody()));
}

TEST(LambdaParser, AssignParsesBelowApplication) {
  Rig R;
  const Expr *E = R.parse("x := f y");
  ASSERT_NE(E, nullptr);
  const auto *A = dyn_cast<AssignExpr>(E);
  ASSERT_NE(A, nullptr);
  EXPECT_TRUE(isa<AppExpr>(A->getValue()));
}

TEST(LambdaParser, RoundTripPrinting) {
  Rig R;
  const Expr *E = R.parse("let x = ref {nonzero} 37 in (!x)|{nonzero} ni");
  ASSERT_NE(E, nullptr);
  std::string S = toString(R.QS, E);
  EXPECT_NE(S.find("let x = "), std::string::npos);
  EXPECT_NE(S.find("nonzero"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Syntactic values & strip
//===----------------------------------------------------------------------===//

TEST(LambdaAst, SyntacticValues) {
  Rig R;
  EXPECT_TRUE(isSyntacticValue(R.parse("42")));
  EXPECT_TRUE(isSyntacticValue(R.parse("fn x. f x")));
  EXPECT_TRUE(isSyntacticValue(R.parse("()")));
  EXPECT_TRUE(isSyntacticValue(R.parse("{const} fn x. x")));
  EXPECT_FALSE(isSyntacticValue(R.parse("f x")));
  EXPECT_FALSE(isSyntacticValue(R.parse("ref 1")));
}

TEST(LambdaAst, StripRemovesAllQualifierSyntax) {
  Rig R;
  const Expr *E = R.parse("let x = {const} 1 in (x |{const}) ni");
  ASSERT_NE(E, nullptr);
  const Expr *S = stripQualifiers(R.Ast, E);
  std::string Printed = toString(R.QS, S);
  EXPECT_EQ(Printed.find("{"), std::string::npos);
  EXPECT_EQ(Printed.find("|"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Standard type checking (simply-typed lambda calculus with refs)
//===----------------------------------------------------------------------===//

class StdTypes : public ::testing::Test {
protected:
  Rig R;

  STy *typeOf(const std::string &Source) {
    const Expr *E = R.parse(Source);
    if (!E)
      return nullptr;
    StdTypeChecker C(R.STys, R.Diags);
    return C.check(E);
  }
};

TEST_F(StdTypes, LiteralsAndLambdas) {
  STy *T = typeOf("fn x. 42");
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(R.STys.toString(T), "('a -> int)");
}

TEST_F(StdTypes, ApplicationResolvesParameter) {
  STy *T = typeOf("(fn x. x := 1) (ref 0)");
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(R.STys.toString(T), "unit");
}

TEST_F(StdTypes, RefDerefAssign) {
  STy *T = typeOf("let r = ref 5 in !r ni");
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(R.STys.toString(T), "int");
}

TEST_F(StdTypes, IfUnifiesBranches) {
  STy *T = typeOf("if 1 then ref 2 else ref 3 fi");
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(R.STys.toString(T), "ref(int)");
}

TEST_F(StdTypes, RejectsSelfApplication) {
  EXPECT_EQ(typeOf("fn x. x x"), nullptr); // occurs check
  EXPECT_TRUE(R.Diags.hasErrors());
}

TEST_F(StdTypes, RejectsBranchMismatch) {
  EXPECT_EQ(typeOf("if 1 then 2 else () fi"), nullptr);
}

TEST_F(StdTypes, RejectsNonIntCondition) {
  EXPECT_EQ(typeOf("if (fn x. x) then 1 else 2 fi"), nullptr);
}

TEST_F(StdTypes, RejectsDerefOfInt) {
  EXPECT_EQ(typeOf("!3"), nullptr);
}

TEST_F(StdTypes, RejectsUnboundVariable) {
  EXPECT_EQ(typeOf("y"), nullptr);
}

TEST_F(StdTypes, AnnotationsAreTypeTransparent) {
  // Observation 1: qualifiers do not change the underlying structure.
  STy *T = typeOf("{const} fn x. ((x |{nonzero}) := 1)");
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(R.STys.toString(T), "(ref(int) -> unit)");
}

} // namespace

//===- tests/programs_test.cpp - Shipped example programs -----------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the .q programs shipped in examples/programs/ through the full
/// pipeline (the same path tools/qualcheck takes) and pins their expected
/// verdicts, so the corpus can't rot. Also covers Observation 1 (stripping
/// qualifiers preserves standard typability) on the same corpus, and the
/// depth-aware annotated-prototype output for C.
///
//===----------------------------------------------------------------------===//

#include "LambdaTestUtil.h"
#include "cfront/CParser.h"
#include "cfront/CSema.h"
#include "constinf/ConstInfer.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#ifndef QUALS_SOURCE_DIR
#define QUALS_SOURCE_DIR "."
#endif

using namespace quals;
using namespace quals::lambda;

namespace {

std::string readProgram(const std::string &Name) {
  std::ifstream In(std::string(QUALS_SOURCE_DIR) + "/examples/programs/" +
                   Name);
  EXPECT_TRUE(In.good()) << "missing example program " << Name;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

struct CorpusCase {
  const char *File;
  bool PolyAccepted;
  bool MonoAccepted;
  bool RunsToValue; ///< Under Figure 5 (independent of static verdict).
};

class Corpus : public ::testing::TestWithParam<CorpusCase> {};

TEST_P(Corpus, VerdictsArePinned) {
  const CorpusCase &C = GetParam();
  std::string Source = readProgram(C.File);
  ASSERT_FALSE(Source.empty());

  {
    Rig R;
    CheckResult Res = R.check(Source, /*Polymorphic=*/true);
    ASSERT_TRUE(Res.StdTypeOk) << R.Diags.renderAll();
    EXPECT_EQ(Res.QualOk, C.PolyAccepted) << C.File;
  }
  {
    Rig R;
    CheckResult Res = R.check(Source, /*Polymorphic=*/false);
    ASSERT_TRUE(Res.StdTypeOk) << R.Diags.renderAll();
    EXPECT_EQ(Res.QualOk, C.MonoAccepted) << C.File;
  }
  {
    Rig R;
    EvalResult Run = R.run(Source);
    EXPECT_EQ(Run.Outcome == EvalOutcome::Value, C.RunsToValue)
        << C.File << ": " << Run.StuckReason;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shipped, Corpus,
    ::testing::Values(
        CorpusCase{"id_poly.q", true, false, true},
        CorpusCase{"nonzero_alias.q", false, false, false},
        CorpusCase{"nonzero_ok.q", true, true, true},
        CorpusCase{"const_cell.q", false, false, true}),
    [](const ::testing::TestParamInfo<CorpusCase> &Info) {
      std::string Name = Info.param.File;
      for (char &C : Name)
        if (C == '.' || C == '-')
          C = '_';
      return Name;
    });

TEST(Corpus, TaintLeakRejectedUnderTaintSystem) {
  // taint_leak.q uses the tainted qualifier; the Rig registers it too.
  Rig R;
  CheckResult Res = R.check(readProgram("taint_leak.q"));
  ASSERT_TRUE(Res.StdTypeOk) << R.Diags.renderAll();
  EXPECT_FALSE(Res.QualOk);
}

TEST(Corpus, ObservationOneStripPreservesStandardTyping) {
  // Observation 1: if e typechecks in the qualified system's standard
  // fragment, strip(e) typechecks in the standard system with the same
  // shape.
  for (const char *File : {"id_poly.q", "nonzero_alias.q", "nonzero_ok.q",
                           "const_cell.q", "taint_leak.q"}) {
    Rig R;
    const Expr *Program = R.parse(readProgram(File));
    ASSERT_NE(Program, nullptr) << File;
    StdTypeChecker Full(R.STys, R.Diags);
    STy *FullTy = Full.check(Program);
    ASSERT_NE(FullTy, nullptr) << File;

    const Expr *Stripped = stripQualifiers(R.Ast, Program);
    StdTypeChecker Plain(R.STys, R.Diags);
    STy *PlainTy = Plain.check(Stripped);
    ASSERT_NE(PlainTy, nullptr) << File;
    EXPECT_EQ(R.STys.toString(FullTy), R.STys.toString(PlainTy)) << File;
  }
}

TEST(Corpus, AnnotatedPrototypesHandleDoublePointers) {
  using namespace quals::cfront;
  using namespace quals::constinf;
  SourceManager SM;
  DiagnosticEngine Diags(SM);
  CAstContext Ast;
  CTypeContext Types;
  StringInterner Idents;
  TranslationUnit TU;
  ASSERT_TRUE(parseCSource(
      SM, "dp.c",
      "int walk(char **names) {\n"
      "  int n = 0;\n"
      "  while (*names) { n++; names = names + 1; }\n"
      "  return n;\n"
      "}\n"
      "void clobber(char **names) { *names = (char *)0; }\n",
      Ast, Types, Idents, Diags, TU));
  CSema Sema(Ast, Types, Idents, Diags);
  ASSERT_TRUE(Sema.analyze(TU));
  ConstInference::Options Opts;
  ConstInference Inf(TU, Diags, Opts);
  ASSERT_TRUE(Inf.run()) << Diags.renderAll();
  std::string Protos = Inf.renderAnnotatedPrototypes();
  // walk only reads: both pointer levels may be const.
  EXPECT_NE(Protos.find("walk(const char *const *"), std::string::npos)
      << Protos;
  // clobber writes *names: the outer level must stay non-const, the inner
  // may be const.
  EXPECT_NE(Protos.find("clobber(const char **"), std::string::npos)
      << Protos;
}

} // namespace

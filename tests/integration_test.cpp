//===- tests/integration_test.cpp - Whole-pipeline integration ------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end tests over a realistic multi-file C program: parse several
/// buffers into one translation unit (the paper analyzes whole multi-file
/// programs), run both inference modes, and check counts, classifications,
/// annotated output, determinism, and agreement between modes.
///
//===----------------------------------------------------------------------===//

#include "cfront/CParser.h"
#include "cfront/CSema.h"
#include "constinf/ConstInfer.h"

#include <gtest/gtest.h>

using namespace quals;
using namespace quals::cfront;
using namespace quals::constinf;

namespace {

// A miniature "string library + client" program split across three files,
// exercising prototypes-vs-definitions across buffers, structs, typedefs,
// library calls, varargs, casts, recursion, and function pointers.
const char *Header =
    "typedef unsigned long size_t;\n"
    "int printf(const char *fmt, ...);\n"
    "void *memcpy(void *dst, const void *src, size_t n);\n"
    "size_t my_strlen(const char *s);\n"
    "char *my_strcpy(char *dst, const char *src);\n"
    "char *my_strchr(char *s, int c);\n"
    "struct buffer { char *data; size_t len; size_t cap; };\n"
    "void buf_append(struct buffer *b, const char *text);\n"
    "size_t buf_len(struct buffer *b);\n";

const char *Library =
    "typedef unsigned long size_t;\n"
    "size_t my_strlen(const char *s) {\n"
    "  size_t n = 0;\n"
    "  while (*s) { n++; s = s + 1; }\n"
    "  return n;\n"
    "}\n"
    "char *my_strcpy(char *dst, const char *src) {\n"
    "  char *d = dst;\n"
    "  while (*src) { *d = *src; d = d + 1; src = src + 1; }\n"
    "  *d = 0;\n"
    "  return dst;\n"
    "}\n"
    "char *my_strchr(char *s, int c) {\n"
    "  while (*s && *s != c) s = s + 1;\n"
    "  return s;\n"
    "}\n";

const char *Client =
    "typedef unsigned long size_t;\n"
    "size_t my_strlen(const char *s);\n"
    "char *my_strcpy(char *dst, const char *src);\n"
    "char *my_strchr(char *s, int c);\n"
    "int printf(const char *fmt, ...);\n"
    "struct buffer { char *data; size_t len; size_t cap; };\n"
    "void buf_append(struct buffer *b, const char *text) {\n"
    "  size_t n = my_strlen(text);\n"
    "  my_strcpy(b->data + b->len, text);\n"
    "  b->len = b->len + n;\n"
    "}\n"
    "size_t buf_len(struct buffer *b) { return b->len; }\n"
    "int count(char *text, int c) {\n"
    "  int n = 0;\n"
    "  char *p = my_strchr(text, c);\n"
    "  while (*p) { n++; p = my_strchr(p + 1, c); }\n"
    "  return n;\n"
    "}\n"
    "void shout(char *line) {\n"
    "  char *bang = my_strchr(line, '.');\n"
    "  if (*bang) *bang = '!';\n"
    "  printf(\"%s\\n\", line);\n"
    "}\n";

struct IntRig {
  SourceManager SM;
  DiagnosticEngine Diags{SM};
  CAstContext Ast;
  CTypeContext Types;
  StringInterner Idents;
  TranslationUnit TU;

  bool load() {
    if (!parseCSource(SM, "lib.h", Header, Ast, Types, Idents, Diags, TU))
      return false;
    if (!parseCSource(SM, "lib.c", Library, Ast, Types, Idents, Diags, TU))
      return false;
    if (!parseCSource(SM, "client.c", Client, Ast, Types, Idents, Diags,
                      TU))
      return false;
    CSema Sema(Ast, Types, Idents, Diags);
    return Sema.analyze(TU);
  }
};

PosClass classify(ConstInference &Inf, std::string_view Fn, int ParamIndex,
                  unsigned Depth = 0) {
  for (const InterestingPos &P : Inf.positions())
    if (P.Fn->getName() == Fn && P.ParamIndex == ParamIndex &&
        P.Depth == Depth)
      return Inf.classify(P);
  ADD_FAILURE() << "missing position " << Fn << "#" << ParamIndex;
  return PosClass::MustNonConst;
}

TEST(Integration, MultiFileProgramAnalyzes) {
  IntRig R;
  ASSERT_TRUE(R.load()) << R.Diags.renderAll();
  // Definitions from lib.c completed the prototypes from lib.h.
  EXPECT_TRUE(R.TU.FunctionMap.at("my_strlen")->isDefined());
  EXPECT_TRUE(R.TU.FunctionMap.at("buf_append")->isDefined());
  // memcpy stayed a library prototype.
  EXPECT_FALSE(R.TU.FunctionMap.at("memcpy")->isDefined());

  ConstInference::Options Opts;
  ConstInference Inf(R.TU, R.Diags, Opts);
  ASSERT_TRUE(Inf.run()) << R.Diags.renderAll();

  ConstCounts C = Inf.counts();
  EXPECT_GT(C.Total, 8u);
  EXPECT_GE(C.PossibleConst, C.Declared);
  EXPECT_EQ(C.PossibleConst + C.MustNonConst, C.Total);
}

TEST(Integration, ClassificationsMatchTheCode) {
  IntRig R;
  ASSERT_TRUE(R.load()) << R.Diags.renderAll();
  ConstInference::Options Opts;
  ConstInference Inf(R.TU, R.Diags, Opts);
  ASSERT_TRUE(Inf.run()) << R.Diags.renderAll();

  // Declared consts hold.
  EXPECT_EQ(classify(Inf, "my_strlen", 0), PosClass::MustConst);
  EXPECT_EQ(classify(Inf, "my_strcpy", 1), PosClass::MustConst);
  EXPECT_EQ(classify(Inf, "buf_append", 1), PosClass::MustConst);
  // my_strcpy writes through dst.
  EXPECT_EQ(classify(Inf, "my_strcpy", 0), PosClass::MustNonConst);
  // shout writes through my_strchr's result into its own line.
  EXPECT_EQ(classify(Inf, "shout", 0), PosClass::MustNonConst);
  // count only reads: polymorphically const-able.
  EXPECT_EQ(classify(Inf, "count", 0), PosClass::Either);
  // my_strchr's own parameter stays generic under polymorphism.
  EXPECT_EQ(classify(Inf, "my_strchr", 0), PosClass::Either);
}

TEST(Integration, MonoPinsTheStrchrClient) {
  IntRig R;
  ASSERT_TRUE(R.load()) << R.Diags.renderAll();
  ConstInference::Options Opts;
  Opts.Polymorphic = false;
  ConstInference Inf(R.TU, R.Diags, Opts);
  ASSERT_TRUE(Inf.run()) << R.Diags.renderAll();
  // Monomorphically, shout's write through my_strchr pins count's text.
  EXPECT_EQ(classify(Inf, "count", 0), PosClass::MustNonConst);
  EXPECT_EQ(classify(Inf, "my_strchr", 0), PosClass::MustNonConst);
}

TEST(Integration, AnnotatedPrototypesAreConsistent) {
  IntRig R;
  ASSERT_TRUE(R.load()) << R.Diags.renderAll();
  ConstInference::Options Opts;
  ConstInference Inf(R.TU, R.Diags, Opts);
  ASSERT_TRUE(Inf.run()) << R.Diags.renderAll();
  std::string Protos = Inf.renderAnnotatedPrototypes();
  EXPECT_NE(Protos.find("my_strlen(const char *"), std::string::npos)
      << Protos;
  // my_strcpy's dst must stay non-const in the output.
  ASSERT_NE(Protos.find("my_strcpy("), std::string::npos);
  EXPECT_EQ(Protos.find("my_strcpy(const"), std::string::npos) << Protos;
}

TEST(Integration, AnalysisIsDeterministic) {
  // Two fresh pipelines over the same text agree exactly.
  auto runOnce = [](bool Poly) {
    IntRig R;
    EXPECT_TRUE(R.load());
    ConstInference::Options Opts;
    Opts.Polymorphic = Poly;
    ConstInference Inf(R.TU, R.Diags, Opts);
    EXPECT_TRUE(Inf.run());
    ConstCounts C = Inf.counts();
    return std::make_tuple(C.Declared, C.PossibleConst, C.Total,
                           Inf.numQualVars(), Inf.numConstraints());
  };
  EXPECT_EQ(runOnce(true), runOnce(true));
  EXPECT_EQ(runOnce(false), runOnce(false));
}

TEST(Integration, PolyNeverBelowMonoOnThisProgram) {
  IntRig RMono, RPoly;
  ASSERT_TRUE(RMono.load());
  ASSERT_TRUE(RPoly.load());
  ConstInference::Options MonoOpts;
  MonoOpts.Polymorphic = false;
  ConstInference Mono(RMono.TU, RMono.Diags, MonoOpts);
  ASSERT_TRUE(Mono.run());
  ConstInference::Options PolyOpts;
  ConstInference Poly(RPoly.TU, RPoly.Diags, PolyOpts);
  ASSERT_TRUE(Poly.run());
  EXPECT_GT(Poly.counts().PossibleConst, Mono.counts().PossibleConst);
  EXPECT_EQ(Poly.counts().Total, Mono.counts().Total);
}

} // namespace

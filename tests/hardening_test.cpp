//===- tests/hardening_test.cpp - Hostile-input robustness ----------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
//
// The resource-limit contract (support/Limits.h, docs/ROBUSTNESS.md):
// truncated, malformed, and adversarially huge inputs must end in rendered
// diagnostics and a clean failure return -- never a stack overflow, OOM
// kill, or assert. The nesting tests go to depth 100'000, far past what an
// unguarded recursive-descent parser survives on a default stack, so a
// regression here crashes the test instead of silently shipping.
//
//===----------------------------------------------------------------------===//

#include "cfront/CParser.h"
#include "cfront/CSema.h"
#include "constinf/ConstInfer.h"
#include "lambda/Parser.h"
#include "lambda/QualInfer.h"
#include "support/Diagnostics.h"

#include "gtest/gtest.h"

#include <string>

using namespace quals;

namespace {

/// Everything one C-pipeline run produces.
struct CRun {
  bool Parsed = false;
  bool SemaOk = false;
  bool InferOk = false;
  unsigned NumErrors = 0;
  bool Bailed = false;
  std::string Rendered;
};

/// Runs the full qualcc pipeline over \p Source under \p Lim; must return
/// (the point of this test suite) regardless of input.
CRun runC(const std::string &Source, Limits Lim = Limits()) {
  SourceManager SM;
  DiagnosticEngine Diags(SM, Lim);
  cfront::CAstContext Ast;
  cfront::CTypeContext Types;
  StringInterner Idents;
  cfront::TranslationUnit TU;
  CRun R;
  R.Parsed = cfront::parseCSource(SM, "hostile.c", Source, Ast, Types,
                                  Idents, Diags, TU);
  if (R.Parsed) {
    cfront::CSema Sema(Ast, Types, Idents, Diags);
    R.SemaOk = Sema.analyze(TU);
    if (R.SemaOk) {
      constinf::ConstInference Inf(TU, Diags, {});
      R.InferOk = Inf.run();
    }
  }
  R.NumErrors = Diags.getNumErrors();
  R.Bailed = Diags.shouldBail();
  R.Rendered = Diags.renderAll();
  return R;
}

/// Everything one lambda-pipeline run produces.
struct LambdaRun {
  bool Parsed = false;
  bool StdTypeOk = false;
  bool QualOk = false;
  bool Bailed = false;
  std::string Rendered;
};

/// Runs the full qualcheck pipeline over \p Source under \p Lim.
LambdaRun runLambdaSrc(const std::string &Source, Limits Lim = Limits()) {
  QualifierSet QS;
  QualifierId ConstQual = QS.add("const", Polarity::Positive);

  SourceManager SM;
  DiagnosticEngine Diags(SM, Lim);
  lambda::AstContext Ast;
  StringInterner Idents;
  LambdaRun R;
  const lambda::Expr *Program =
      lambda::parseString(SM, "hostile.q", Source, QS, Ast, Idents, Diags);
  R.Parsed = Program != nullptr;
  if (Program) {
    lambda::STyContext STys;
    SolverConfig Config;
    Config.MaxConstraints = Lim.MaxConstraints;
    ConstraintSystem Sys(QS, Config);
    QualTypeFactory Factory;
    lambda::LambdaTypeCtors Ctors;
    lambda::QualInferOptions Options;
    Options.ConstQual = ConstQual;
    lambda::CheckResult Result = lambda::checkProgram(
        Program, QS, STys, Sys, Factory, Ctors, Diags, Options);
    R.StdTypeOk = Result.StdTypeOk;
    R.QualOk = Result.QualOk;
  }
  R.Bailed = Diags.shouldBail();
  R.Rendered = Diags.renderAll();
  return R;
}

//===----------------------------------------------------------------------===//
// Satellite: deep nesting must hit the depth budget, not the stack.
//===----------------------------------------------------------------------===//

TEST(HardeningDepth, CParensAtDepth100k) {
  std::string Source = "int f(void) { return ";
  Source.append(100000, '(');
  Source += "1";
  Source.append(100000, ')');
  Source += "; }\n";
  CRun R = runC(Source);
  EXPECT_FALSE(R.Parsed);
  EXPECT_TRUE(R.Bailed);
  EXPECT_NE(R.Rendered.find("fatal: resource limit"), std::string::npos)
      << R.Rendered;
  EXPECT_NE(R.Rendered.find("nesting too deep"), std::string::npos);
}

TEST(HardeningDepth, CDeclaratorAtDepth100k) {
  std::string Source = "int ";
  Source.append(100000, '(');
  Source += "*p";
  Source.append(100000, ')');
  Source += ";\n";
  CRun R = runC(Source);
  EXPECT_FALSE(R.Parsed);
  EXPECT_TRUE(R.Bailed);
  EXPECT_NE(R.Rendered.find("nesting too deep"), std::string::npos);
}

TEST(HardeningDepth, CStatementsAtDepth100k) {
  std::string Source = "void f(void) { ";
  for (int I = 0; I != 100000; ++I)
    Source += "if (1) ";
  Source += "return;";
  Source += " }\n";
  CRun R = runC(Source);
  EXPECT_FALSE(R.Parsed);
  EXPECT_TRUE(R.Bailed);
  EXPECT_NE(R.Rendered.find("nesting too deep"), std::string::npos);
}

TEST(HardeningDepth, LambdaFnChainAtDepth100k) {
  std::string Source;
  for (int I = 0; I != 100000; ++I)
    Source += "fn x. ";
  Source += "x";
  LambdaRun R = runLambdaSrc(Source);
  EXPECT_FALSE(R.Parsed);
  EXPECT_TRUE(R.Bailed);
  EXPECT_NE(R.Rendered.find("nesting too deep"), std::string::npos);
}

TEST(HardeningDepth, LambdaBangChainAtDepth100k) {
  std::string Source(100000, '!');
  Source += "1";
  LambdaRun R = runLambdaSrc(Source);
  EXPECT_FALSE(R.Parsed);
  EXPECT_TRUE(R.Bailed);
  EXPECT_NE(R.Rendered.find("nesting too deep"), std::string::npos);
}

TEST(HardeningDepth, ReasonableNestingStillParses) {
  // The default budget must not reject plausible human code.
  std::string Source = "int f(void) { return ";
  Source.append(40, '(');
  Source += "1";
  Source.append(40, ')');
  Source += "; }\n";
  CRun R = runC(Source);
  EXPECT_TRUE(R.Parsed);
  EXPECT_TRUE(R.InferOk) << R.Rendered;
  EXPECT_FALSE(R.Bailed);
}

TEST(HardeningDepth, ZeroMeansUnlimitedAcceptsModerateDepth) {
  Limits Lim;
  Lim.MaxRecursionDepth = 0;
  std::string Source = "int f(void) { return ";
  Source.append(500, '(');
  Source += "1";
  Source.append(500, ')');
  Source += "; }\n";
  CRun R = runC(Source, Lim);
  EXPECT_TRUE(R.Parsed) << R.Rendered;
  EXPECT_FALSE(R.Bailed);
}

//===----------------------------------------------------------------------===//
// Satellite: the error cap stops diagnostic floods.
//===----------------------------------------------------------------------===//

TEST(HardeningErrorCap, FloodOfErrorsHitsCap) {
  // 1000 statements referencing undeclared variables; the default cap (64)
  // must bail long before all of them are diagnosed and recorded.
  std::string Source = "void f(void) {\n";
  for (int I = 0; I != 1000; ++I)
    Source += "  undeclared_" + std::to_string(I) + " = 1;\n";
  Source += "}\n";
  CRun R = runC(Source);
  EXPECT_FALSE(R.SemaOk);
  EXPECT_TRUE(R.Bailed);
  EXPECT_NE(R.Rendered.find("too many errors"), std::string::npos);
  // Recorded diagnostics are capped even though more errors were counted.
  Limits Defaults;
  EXPECT_GE(R.NumErrors, Defaults.MaxErrors);
}

TEST(HardeningErrorCap, CustomCapOfOneBailsImmediately) {
  Limits Lim;
  Lim.MaxErrors = 1;
  CRun R = runC("void f(void) { a = 1; b = 2; }\n", Lim);
  EXPECT_TRUE(R.Bailed);
  EXPECT_NE(R.Rendered.find("too many errors"), std::string::npos);
}

TEST(HardeningErrorCap, ZeroMeansUnlimited) {
  Limits Lim;
  Lim.MaxErrors = 0;
  std::string Source = "void f(void) {\n";
  for (int I = 0; I != 200; ++I)
    Source += "  undeclared_" + std::to_string(I) + " = 1;\n";
  Source += "}\n";
  CRun R = runC(Source, Lim);
  EXPECT_FALSE(R.SemaOk);
  EXPECT_FALSE(R.Bailed);
  EXPECT_GE(R.NumErrors, 200u);
}

//===----------------------------------------------------------------------===//
// Satellite: integer literals that overflow are diagnosed, not wrapped.
//===----------------------------------------------------------------------===//

TEST(HardeningLexer, COverflowLiteralDiagnosed) {
  CRun R = runC("int f(void) { return 99999999999999999999999999; }\n");
  EXPECT_NE(R.Rendered.find("integer literal out of range"),
            std::string::npos)
      << R.Rendered;
}

TEST(HardeningLexer, CMaxLongStillAccepted) {
  CRun R = runC("long f(void) { return 9223372036854775807; }\n");
  EXPECT_EQ(R.Rendered.find("integer literal out of range"),
            std::string::npos)
      << R.Rendered;
}

TEST(HardeningLexer, LambdaOverflowLiteralDiagnosed) {
  LambdaRun R = runLambdaSrc("99999999999999999999999999");
  EXPECT_NE(R.Rendered.find("integer literal out of range"),
            std::string::npos)
      << R.Rendered;
}

//===----------------------------------------------------------------------===//
// Tentpole: constraint and arena budgets surface as fatal diagnostics.
//===----------------------------------------------------------------------===//

TEST(HardeningBudgets, ConstraintBudgetExhaustionIsFatal) {
  // A tiny budget that any real program exceeds.
  Limits Lim;
  Lim.MaxConstraints = 4;
  CRun R = runC("void set(int *p, int v) { *p = v; }\n"
                "int get(int *p) { return *p; }\n"
                "int roundtrip(int *a, int *b) {\n"
                "  set(a, get(b));\n"
                "  return get(a);\n"
                "}\n",
                Lim);
  EXPECT_TRUE(R.Parsed);
  EXPECT_TRUE(R.SemaOk);
  EXPECT_FALSE(R.InferOk);
  EXPECT_NE(R.Rendered.find("constraint budget exhausted"),
            std::string::npos)
      << R.Rendered;
}

TEST(HardeningBudgets, LambdaConstraintBudgetExhaustionIsFatal) {
  Limits Lim;
  Lim.MaxConstraints = 2;
  LambdaRun R = runLambdaSrc("let id = fn x. x in id (ref 1) ni", Lim);
  EXPECT_TRUE(R.Parsed);
  EXPECT_FALSE(R.StdTypeOk);
  EXPECT_NE(R.Rendered.find("constraint budget exhausted"),
            std::string::npos)
      << R.Rendered;
}

TEST(HardeningBudgets, ArenaBudgetExhaustionIsFatal) {
  // A one-byte arena budget trips on the first allocation after the
  // engine's baseline snapshot.
  Limits Lim;
  Lim.MaxArenaBytes = 1;
  CRun R = runC("int f(void) { return 1; }\n"
                "int g(void) { return f(); }\n",
                Lim);
  EXPECT_FALSE(R.InferOk);
  EXPECT_TRUE(R.Bailed);
  EXPECT_NE(R.Rendered.find("arena bytes"), std::string::npos)
      << R.Rendered;
}

//===----------------------------------------------------------------------===//
// Garbage and truncation through both front ends.
//===----------------------------------------------------------------------===//

TEST(HardeningGarbage, CBinaryGarbageFailsCleanly) {
  std::string Garbage;
  for (int I = 0; I != 256; ++I)
    Garbage += static_cast<char>(I);
  CRun R = runC(Garbage);
  EXPECT_FALSE(R.Parsed);
  EXPECT_GE(R.NumErrors, 1u);
}

TEST(HardeningGarbage, LambdaBinaryGarbageFailsCleanly) {
  std::string Garbage("\x7f\x00\xff\n\"\\", 6); // embedded NUL included
  LambdaRun R = runLambdaSrc(Garbage);
  EXPECT_FALSE(R.Parsed);
}

TEST(HardeningGarbage, CTruncatedFunctionFailsCleanly) {
  CRun R = runC("int f(int x) { return x +");
  EXPECT_FALSE(R.Parsed);
  EXPECT_GE(R.NumErrors, 1u);
}

TEST(HardeningGarbage, LambdaTruncatedLetFailsCleanly) {
  LambdaRun R = runLambdaSrc("let x = fn y.");
  EXPECT_FALSE(R.Parsed);
}

TEST(HardeningGarbage, CUnterminatedCommentFailsCleanly) {
  CRun R = runC("int f(void) { return 1; } /* never closed");
  EXPECT_GE(R.NumErrors, 1u);
}

} // namespace

//===- tests/constinf_test.cpp - Const inference tests --------------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests Section 4: the l translation's behaviour on the paper's worked
/// examples, assignment/write constraints, struct field sharing, typedef
/// non-sharing, cast severing, library-function conservatism, the FDG, and
/// monomorphic-vs-polymorphic inference differences.
///
//===----------------------------------------------------------------------===//

#include "cfront/CParser.h"
#include "cfront/CSema.h"
#include "constinf/ConstInfer.h"

#include <gtest/gtest.h>

using namespace quals;
using namespace quals::cfront;
using namespace quals::constinf;

namespace {

/// Parse + sema + const inference pipeline for one program.
struct InfRig {
  SourceManager SM;
  DiagnosticEngine Diags{SM};
  CAstContext Ast;
  CTypeContext Types;
  StringInterner Idents;
  TranslationUnit TU;
  std::unique_ptr<ConstInference> Inf;

  bool analyze(const std::string &Source, bool Polymorphic = true) {
    if (!parseCSource(SM, "test.c", Source, Ast, Types, Idents, Diags, TU))
      return false;
    CSema Sema(Ast, Types, Idents, Diags);
    if (!Sema.analyze(TU))
      return false;
    ConstInference::Options Opts;
    Opts.Polymorphic = Polymorphic;
    Inf = std::make_unique<ConstInference>(TU, Diags, Opts);
    return Inf->run();
  }

  /// Finds the interesting position for parameter \p ParamIndex of \p Fn at
  /// pointer depth \p Depth (-1 = return).
  const InterestingPos *pos(std::string_view Fn, int ParamIndex,
                            unsigned Depth = 0) {
    for (const InterestingPos &P : Inf->positions())
      if (P.Fn->getName() == Fn && P.ParamIndex == ParamIndex &&
          P.Depth == Depth)
        return &P;
    return nullptr;
  }

  PosClass classOf(std::string_view Fn, int ParamIndex, unsigned Depth = 0) {
    const InterestingPos *P = pos(Fn, ParamIndex, Depth);
    EXPECT_NE(P, nullptr) << "no position " << Fn << "#" << ParamIndex;
    return P ? Inf->classify(*P) : PosClass::MustNonConst;
  }
};

//===----------------------------------------------------------------------===//
// The l translation and basic write constraints
//===----------------------------------------------------------------------===//

TEST(ConstInf, ReadOnlyParamMayBeConst) {
  InfRig R;
  ASSERT_TRUE(R.analyze("int deref(int *p) { return *p; }"))
      << R.Diags.renderAll();
  EXPECT_EQ(R.classOf("deref", 0), PosClass::Either);
}

TEST(ConstInf, WrittenThroughParamMustNotBeConst) {
  InfRig R;
  ASSERT_TRUE(R.analyze("void set(int *p) { *p = 3; }"))
      << R.Diags.renderAll();
  EXPECT_EQ(R.classOf("set", 0), PosClass::MustNonConst);
}

TEST(ConstInf, DeclaredConstIsMustConst) {
  InfRig R;
  ASSERT_TRUE(R.analyze("int get(const int *p) { return *p; }"))
      << R.Diags.renderAll();
  const InterestingPos *P = R.pos("get", 0);
  ASSERT_NE(P, nullptr);
  EXPECT_TRUE(P->DeclaredConst);
  EXPECT_EQ(R.classOf("get", 0), PosClass::MustConst);
}

TEST(ConstInf, WriteToDeclaredConstIsAnError) {
  InfRig R;
  EXPECT_FALSE(R.analyze("void bad(const int *p) { *p = 1; }"));
  EXPECT_TRUE(R.Diags.hasErrors());
}

TEST(ConstInf, PaperSection41AssignmentExample) {
  // int x; const int y; x = y; -- y's constness does not affect x, because
  // const qualifies y's ref, not the int.
  InfRig R;
  ASSERT_TRUE(R.analyze("void f(void) { int x; const int y; x = y; }"))
      << R.Diags.renderAll();
}

TEST(ConstInf, PaperSection41PointerExample) {
  // int *x; const int *y; y = x; -- legal via ref subtyping after the
  // translation shifts const up one level.
  InfRig R;
  ASSERT_TRUE(R.analyze(
      "void f(void) { int *x; const int *y; int v; x = &v; y = x; }"))
      << R.Diags.renderAll();
}

TEST(ConstInf, ReverseFlowConstIntoNonConstPointerRejected) {
  // const int *y; int *x; x = y; *x = 1; -- writing through x would defeat
  // y's const; the invariant ref rule catches the alias.
  InfRig R;
  EXPECT_FALSE(R.analyze(
      "void f(const int *y) { int *x; x = (int *)0; x = y; *x = 1; }"));
}

TEST(ConstInf, IndirectWriteThroughAliasPropagates) {
  // Writing through an alias of p's target makes p's position non-const.
  InfRig R;
  ASSERT_TRUE(R.analyze(
      "void f(int *p) { int *q; q = p; *q = 4; }"))
      << R.Diags.renderAll();
  EXPECT_EQ(R.classOf("f", 0), PosClass::MustNonConst);
}

TEST(ConstInf, DoublePointerHasTwoPositions) {
  InfRig R;
  ASSERT_TRUE(R.analyze("int g(char **v) { return 0; }"))
      << R.Diags.renderAll();
  EXPECT_NE(R.pos("g", 0, 0), nullptr); // char * const * level... depth 0
  EXPECT_NE(R.pos("g", 0, 1), nullptr); // const char ** level
  unsigned Count = 0;
  for (const InterestingPos &P : R.Inf->positions())
    if (P.Fn->getName() == "g")
      ++Count;
  EXPECT_EQ(Count, 2u);
}

TEST(ConstInf, WriteAtOneLevelOnlyPinsThatLevel) {
  InfRig R;
  ASSERT_TRUE(R.analyze("void h(char **v) { *v = (char *)0; }"))
      << R.Diags.renderAll();
  EXPECT_EQ(R.classOf("h", 0, 0), PosClass::MustNonConst); // *v written
  EXPECT_EQ(R.classOf("h", 0, 1), PosClass::Either);       // **v untouched
}

TEST(ConstInf, ReturnPositionTrackedMono) {
  InfRig R;
  ASSERT_TRUE(R.analyze(
      "static int cell;\n"
      "int *give(void) { return &cell; }\n"
      "void user(void) { *give() = 5; }\n",
      /*Polymorphic=*/false))
      << R.Diags.renderAll();
  EXPECT_EQ(R.classOf("give", -1), PosClass::MustNonConst);
}

TEST(ConstInf, ReturnPositionGenericUnderPolymorphism) {
  // Under polymorphism the caller's write pins only its own instantiation;
  // the scheme variable stays unconstrained, and per Section 4.4 such
  // variables are counted as possible consts ("we need to leave these as
  // unconstrained variables, since they may be required to be const or
  // non-const in different contexts").
  InfRig R;
  ASSERT_TRUE(R.analyze(
      "static int cell;\n"
      "int *give(void) { return &cell; }\n"
      "void user(void) { *give() = 5; }\n",
      /*Polymorphic=*/true))
      << R.Diags.renderAll();
  EXPECT_EQ(R.classOf("give", -1), PosClass::Either);
}

TEST(ConstInf, UnusedReturnPointerMayBeConst) {
  InfRig R;
  ASSERT_TRUE(R.analyze(
      "static int cell;\n"
      "int *give(void) { return &cell; }\n"
      "int user(void) { return *give(); }\n"))
      << R.Diags.renderAll();
  EXPECT_EQ(R.classOf("give", -1), PosClass::Either);
}

//===----------------------------------------------------------------------===//
// Structs, typedefs, casts, library functions (Section 4.2)
//===----------------------------------------------------------------------===//

TEST(ConstInf, StructFieldsShareQualifiers) {
  // A write through one instance's field pins the field for all instances:
  // passing any struct st pointer's field cell must reflect the write.
  InfRig R;
  ASSERT_TRUE(R.analyze(
      "struct st { int *p; };\n"
      "void w(struct st *a) { *(a->p) = 1; }\n"
      "int r(struct st *b) { return *(b->p); }\n"))
      << R.Diags.renderAll();
  // Positions here are on the struct pointers themselves (depth 0).
  // The shared field means the *field's* pointee is written; the struct
  // pointer a is written through (field store) -- check a cannot be const
  // at depth 0? A field write does not write the struct cell itself...
  // The struct pointer positions stay Either (no direct struct writes).
  EXPECT_EQ(R.classOf("r", 0, 0), PosClass::Either);
}

TEST(ConstInf, StructAssignmentRequiresNonConstTarget) {
  InfRig R;
  ASSERT_TRUE(R.analyze(
      "struct st { int x; };\n"
      "void copy(struct st *d, struct st *s) { *d = *s; }\n"))
      << R.Diags.renderAll();
  EXPECT_EQ(R.classOf("copy", 0), PosClass::MustNonConst);
  EXPECT_EQ(R.classOf("copy", 1), PosClass::Either);
}

TEST(ConstInf, TypedefsDoNotShareQualifiers) {
  // typedef int *ip; ip c, d -- writing through c must not pin d.
  InfRig R;
  ASSERT_TRUE(R.analyze(
      "typedef int *ip;\n"
      "int reader(ip d) { return *d; }\n"
      "void writer(ip c) { *c = 1; }\n"))
      << R.Diags.renderAll();
  EXPECT_EQ(R.classOf("writer", 0), PosClass::MustNonConst);
  EXPECT_EQ(R.classOf("reader", 0), PosClass::Either);
}

TEST(ConstInf, ExplicitCastSeversFlow) {
  // Casting away the connection: the write through the cast result does not
  // pin p (matching the paper: casts lose the association). This models
  // "casting away const" being implementation-defined.
  InfRig R;
  ASSERT_TRUE(R.analyze(
      "void f(const int *p) { int *q; q = (int *)p; *q = 1; }"))
      << R.Diags.renderAll();
  EXPECT_EQ(R.classOf("f", 0), PosClass::MustConst); // still declared const
}

TEST(ConstInf, ImplicitFlowIsKept) {
  // Without the cast the same program is a const error.
  InfRig R;
  EXPECT_FALSE(R.analyze(
      "void f(const int *p) { int *q; q = p; *q = 1; }"));
}

TEST(ConstInf, LibraryFunctionParamsConservative) {
  // strcpy's first parameter is not declared const: passing p there forces
  // p non-const. The second is declared const: q stays free.
  InfRig R;
  ASSERT_TRUE(R.analyze(
      "char *strcpy(char *dst, const char *src);\n"
      "void f(char *p, char *q) { strcpy(p, q); }\n"))
      << R.Diags.renderAll();
  EXPECT_EQ(R.classOf("f", 0), PosClass::MustNonConst);
  EXPECT_EQ(R.classOf("f", 1), PosClass::Either);
}

TEST(ConstInf, ImplicitlyDeclaredFunctionForcesNonConst) {
  InfRig R;
  ASSERT_TRUE(R.analyze(
      "void f(int *p) { mystery(p); }"))
      << R.Diags.renderAll();
  EXPECT_EQ(R.classOf("f", 0), PosClass::MustNonConst);
}

TEST(ConstInf, VarargsExtraArgsForcedNonConst) {
  InfRig R;
  ASSERT_TRUE(R.analyze(
      "int printf(const char *fmt, ...);\n"
      "void f(const char *fmt, int *data) { printf(fmt, data); }\n"))
      << R.Diags.renderAll();
  EXPECT_EQ(R.classOf("f", 1), PosClass::MustNonConst);
}

TEST(ConstInf, DefinedFunctionsAreNotPenalized) {
  // Calling a *defined* function that only reads leaves the argument free.
  InfRig R;
  ASSERT_TRUE(R.analyze(
      "int reader(int *p) { return *p; }\n"
      "int f(int *q) { return reader(q); }\n"))
      << R.Diags.renderAll();
  EXPECT_EQ(R.classOf("f", 0), PosClass::Either);
}

TEST(ConstInf, CalleeWritePropagatesToCallerArgument) {
  InfRig R;
  ASSERT_TRUE(R.analyze(
      "void setter(int *p) { *p = 0; }\n"
      "void f(int *q) { setter(q); }\n"))
      << R.Diags.renderAll();
  EXPECT_EQ(R.classOf("f", 0), PosClass::MustNonConst);
}

//===----------------------------------------------------------------------===//
// FDG (Definition 4)
//===----------------------------------------------------------------------===//

TEST(ConstInf, FdgFindsMutualRecursion) {
  InfRig R;
  ASSERT_TRUE(R.analyze(
      "int even(int n);\n"
      "int odd(int n) { return n ? even(n - 1) : 0; }\n"
      "int even(int n) { return n ? odd(n - 1) : 1; }\n"
      "int main(void) { return even(10); }\n"))
      << R.Diags.renderAll();
  Fdg G = buildFdg(R.TU);
  unsigned Even = G.NodeOf.at(R.TU.FunctionMap.at("even"));
  unsigned Odd = G.NodeOf.at(R.TU.FunctionMap.at("odd"));
  unsigned Main = G.NodeOf.at(R.TU.FunctionMap.at("main"));
  EXPECT_EQ(G.Sccs.ComponentOf[Even], G.Sccs.ComponentOf[Odd]);
  EXPECT_NE(G.Sccs.ComponentOf[Even], G.Sccs.ComponentOf[Main]);
  // Callees first.
  EXPECT_LT(G.Sccs.ComponentOf[Even], G.Sccs.ComponentOf[Main]);
}

TEST(ConstInf, FdgCountsAddressTakenReferences) {
  InfRig R;
  ASSERT_TRUE(R.analyze(
      "int cb(int x) { return x; }\n"
      "int (*get(void))(int) { return cb; }\n"))
      << R.Diags.renderAll();
  Fdg G = buildFdg(R.TU);
  unsigned Cb = G.NodeOf.at(R.TU.FunctionMap.at("cb"));
  unsigned Get = G.NodeOf.at(R.TU.FunctionMap.at("get"));
  EXPECT_LT(G.Sccs.ComponentOf[Cb], G.Sccs.ComponentOf[Get]);
}

//===----------------------------------------------------------------------===//
// Monomorphic vs polymorphic inference (Sections 3.2 and 4.3)
//===----------------------------------------------------------------------===//

/// The paper's introduction example: one id function used at a const and a
/// written-through context.
static const char *IdProgram =
    "int *id(int *x) { return x; }\n"
    "void writer(int *p) { *id(p) = 1; }\n"
    "int reader(const int *q) { return *id((int *)q); }\n";

TEST(ConstInf, MonomorphicIdConflatesUses) {
  InfRig R;
  ASSERT_TRUE(R.analyze(IdProgram, /*Polymorphic=*/false))
      << R.Diags.renderAll();
  // In mono mode the write through one use of id pins id's parameter.
  EXPECT_EQ(R.classOf("id", 0), PosClass::MustNonConst);
}

TEST(ConstInf, PolymorphicIdKeepsUsesSeparate) {
  InfRig R;
  ASSERT_TRUE(R.analyze(IdProgram, /*Polymorphic=*/true))
      << R.Diags.renderAll();
  // Poly: id's own interface stays unconstrained.
  EXPECT_EQ(R.classOf("id", 0), PosClass::Either);
  const QualScheme *S =
      R.Inf->schemeFor(R.TU.FunctionMap.at("id"));
  ASSERT_NE(S, nullptr);
  EXPECT_TRUE(S->isPolymorphic());
}

TEST(ConstInf, PolyCountsAtLeastMonoCounts) {
  // On the same program the polymorphic analysis never allows fewer consts.
  const char *Prog =
      "int *id(int *x) { return x; }\n"
      "void w(int *p) { *id(p) = 1; }\n"
      "int r(int *q) { return *id(q); }\n"
      "void through(int *a, int *b) { w(id(a)); r(id(b)); }\n";
  InfRig Mono, Poly;
  ASSERT_TRUE(Mono.analyze(Prog, false)) << Mono.Diags.renderAll();
  ASSERT_TRUE(Poly.analyze(Prog, true)) << Poly.Diags.renderAll();
  EXPECT_GE(Poly.Inf->counts().PossibleConst,
            Mono.Inf->counts().PossibleConst);
  EXPECT_EQ(Poly.Inf->counts().Total, Mono.Inf->counts().Total);
}

TEST(ConstInf, StrchrPatternBenefitsFromPolymorphism) {
  // The introduction's strchr: takes const char *, returns char * into the
  // same string. With our own poly strchr clone, a caller that writes the
  // result pins only its own instantiation.
  const char *Prog =
      "char *find(char *s, int c) {\n"
      "  while (*s && *s != c) s = s + 1;\n"
      "  return s;\n"
      "}\n"
      "void scribble(char *buf) { *find(buf, 'x') = '!'; }\n"
      "int probe(char *msg) { return *find(msg, 'y'); }\n";
  InfRig Poly;
  ASSERT_TRUE(Poly.analyze(Prog, true)) << Poly.Diags.renderAll();
  // find's own parameter is read-only within find+probe; only scribble's
  // buf gets pinned.
  EXPECT_EQ(Poly.classOf("scribble", 0), PosClass::MustNonConst);
  EXPECT_EQ(Poly.classOf("probe", 0), PosClass::Either);
  EXPECT_EQ(Poly.classOf("find", 0), PosClass::Either);

  InfRig Mono;
  ASSERT_TRUE(Mono.analyze(Prog, false)) << Mono.Diags.renderAll();
  EXPECT_EQ(Mono.classOf("probe", 0), PosClass::MustNonConst);
}

TEST(ConstInf, RecursiveFunctionAnalyzed) {
  InfRig R;
  ASSERT_TRUE(R.analyze(
      "int len(const char *s) { return *s ? 1 + len(s + 1) : 0; }\n"))
      << R.Diags.renderAll();
  EXPECT_EQ(R.classOf("len", 0), PosClass::MustConst);
}

TEST(ConstInf, GlobalInitializersAnalyzedAfterTraversal) {
  InfRig R;
  ASSERT_TRUE(R.analyze(
      "int cell;\n"
      "int *global_ptr = &cell;\n"
      "void w(void) { *global_ptr = 2; }\n"))
      << R.Diags.renderAll();
}

TEST(ConstInf, GlobalsStayMonomorphic) {
  // A global pointer written through in one function pins it everywhere.
  InfRig R;
  ASSERT_TRUE(R.analyze(
      "int *shared;\n"
      "void setup(int *p) { shared = p; }\n"
      "void mutate(void) { *shared = 7; }\n",
      /*Polymorphic=*/true))
      << R.Diags.renderAll();
  EXPECT_EQ(R.classOf("setup", 0), PosClass::MustNonConst);
}

TEST(ConstInf, CountsAreConsistent) {
  InfRig R;
  ASSERT_TRUE(R.analyze(
      "int g1(const int *a, int *b) { *b = *a; return 0; }\n"
      "char *g2(char *s) { return s; }\n"))
      << R.Diags.renderAll();
  ConstCounts C = R.Inf->counts();
  EXPECT_EQ(C.Total, 4u); // a, b, s, g2 return
  EXPECT_EQ(C.Declared, 1u);
  EXPECT_EQ(C.PossibleConst + C.MustNonConst, C.Total);
  EXPECT_GE(C.PossibleConst, C.Declared);
}

TEST(ConstInf, AnnotatedPrototypesShowInferredConsts) {
  InfRig R;
  ASSERT_TRUE(R.analyze(
      "int read_only(int *p) { return *p; }\n"
      "void write_it(int *p) { *p = 0; }\n"))
      << R.Diags.renderAll();
  std::string Protos = R.Inf->renderAnnotatedPrototypes();
  EXPECT_NE(Protos.find("read_only(const int *"), std::string::npos)
      << Protos;
  EXPECT_NE(Protos.find("write_it(int *"), std::string::npos) << Protos;
}

TEST(ConstInf, ArrayParameterTreatedAsPointer) {
  InfRig R;
  ASSERT_TRUE(R.analyze(
      "int sum(int v[], int n) {\n"
      "  int i; int t = 0;\n"
      "  for (i = 0; i < n; i++) t += v[i];\n"
      "  return t;\n"
      "}\n"))
      << R.Diags.renderAll();
  EXPECT_EQ(R.classOf("sum", 0), PosClass::Either);
}

TEST(ConstInf, ArrayElementWritePins) {
  InfRig R;
  ASSERT_TRUE(R.analyze(
      "void clear(int v[], int n) {\n"
      "  int i;\n"
      "  for (i = 0; i < n; i++) v[i] = 0;\n"
      "}\n"))
      << R.Diags.renderAll();
  EXPECT_EQ(R.classOf("clear", 0), PosClass::MustNonConst);
}

TEST(ConstInf, FunctionPointerCallsConstrainArguments) {
  // Monomorphically: writer flows into fp, fp's parameter is written
  // through, and x/y flow into it -- everything is pinned.
  InfRig R;
  ASSERT_TRUE(R.analyze(
      "void apply(void (*fp)(int *), int *x) { fp(x); }\n"
      "void writer(int *p) { *p = 1; }\n"
      "void use(int *y) { apply(writer, y); }\n",
      /*Polymorphic=*/false))
      << R.Diags.renderAll();
  EXPECT_EQ(R.classOf("writer", 0), PosClass::MustNonConst);
  EXPECT_EQ(R.classOf("apply", 1), PosClass::MustNonConst);
  EXPECT_EQ(R.classOf("use", 0), PosClass::MustNonConst);
}

} // namespace

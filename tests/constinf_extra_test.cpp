//===- tests/constinf_extra_test.cpp - More const-inference coverage ------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Third-round const-inference coverage: conditional joins over pointers,
/// pointer arithmetic, nested structs, self-referential lists, multi-level
/// write propagation, scale, and idempotence of repeated runs.
///
//===----------------------------------------------------------------------===//

#include "cfront/CParser.h"
#include "cfront/CSema.h"
#include "constinf/ConstInfer.h"
#include "gen/SynthGen.h"

#include <gtest/gtest.h>

using namespace quals;
using namespace quals::cfront;
using namespace quals::constinf;

namespace {

struct XRig {
  SourceManager SM;
  DiagnosticEngine Diags{SM};
  CAstContext Ast;
  CTypeContext Types;
  StringInterner Idents;
  TranslationUnit TU;
  std::unique_ptr<ConstInference> Inf;

  bool analyze(const std::string &Source, bool Polymorphic = true) {
    if (!parseCSource(SM, "x.c", Source, Ast, Types, Idents, Diags, TU))
      return false;
    CSema Sema(Ast, Types, Idents, Diags);
    if (!Sema.analyze(TU))
      return false;
    ConstInference::Options Opts;
    Opts.Polymorphic = Polymorphic;
    Inf = std::make_unique<ConstInference>(TU, Diags, Opts);
    return Inf->run();
  }

  PosClass classOf(std::string_view Fn, int ParamIndex,
                   unsigned Depth = 0) {
    for (const InterestingPos &P : Inf->positions())
      if (P.Fn->getName() == Fn && P.ParamIndex == ParamIndex &&
          P.Depth == Depth)
        return Inf->classify(P);
    ADD_FAILURE() << "missing position " << Fn << "#" << ParamIndex;
    return PosClass::MustNonConst;
  }
};

TEST(ConstInfExtra, ConditionalJoinOfPointersLinksBothArms) {
  // Writing through the join of (a ? p : q) pins both parameters.
  XRig R;
  ASSERT_TRUE(R.analyze(
      "void pick(int a, int *p, int *q) { *(a ? p : q) = 1; }",
      /*Polymorphic=*/false))
      << R.Diags.renderAll();
  EXPECT_EQ(R.classOf("pick", 1), PosClass::MustNonConst);
  EXPECT_EQ(R.classOf("pick", 2), PosClass::MustNonConst);
}

TEST(ConstInfExtra, ConditionalWithNullArmKeepsPointer) {
  XRig R;
  ASSERT_TRUE(R.analyze(
      "int deref_or(int c, int *p) { return c ? *(c ? p : 0) : 0; }"))
      << R.Diags.renderAll();
  EXPECT_EQ(R.classOf("deref_or", 1), PosClass::Either);
}

TEST(ConstInfExtra, PointerArithmeticPreservesTheCell) {
  XRig R;
  ASSERT_TRUE(R.analyze(
      "void wipe(char *s, int n) { *(s + n) = 0; }",
      false))
      << R.Diags.renderAll();
  EXPECT_EQ(R.classOf("wipe", 0), PosClass::MustNonConst);
  XRig R2;
  ASSERT_TRUE(R2.analyze(
      "int peek(char *s, int n) { return *(s + n); }", false))
      << R2.Diags.renderAll();
  EXPECT_EQ(R2.classOf("peek", 0), PosClass::Either);
}

TEST(ConstInfExtra, CompoundAssignmentPinsTheCell) {
  XRig R;
  ASSERT_TRUE(R.analyze("void bump(int *p) { *p += 2; }", false))
      << R.Diags.renderAll();
  EXPECT_EQ(R.classOf("bump", 0), PosClass::MustNonConst);
}

TEST(ConstInfExtra, IncrementOfPointeePins) {
  XRig R;
  ASSERT_TRUE(R.analyze("void tick(int *p) { (*p)++; }", false))
      << R.Diags.renderAll();
  EXPECT_EQ(R.classOf("tick", 0), PosClass::MustNonConst);
}

TEST(ConstInfExtra, IncrementOfLocalPointerDoesNotPinPointee) {
  // s++ writes the *pointer variable*, not the pointed-to cell.
  XRig R;
  ASSERT_TRUE(R.analyze(
      "int len(char *s) { int n = 0; while (*s) { s++; n++; } return n; }",
      false))
      << R.Diags.renderAll();
  EXPECT_EQ(R.classOf("len", 0), PosClass::Either);
}

TEST(ConstInfExtra, NestedStructFieldsShareDeeply) {
  XRig R;
  ASSERT_TRUE(R.analyze(
      "struct inner { int *slot; };\n"
      "struct outer { struct inner in; };\n"
      "void w(struct outer *o) { *(o->in.slot) = 1; }\n"
      "void r(struct outer *p, int *q) { p->in.slot = q; }\n",
      /*Polymorphic=*/false))
      << R.Diags.renderAll();
  // q flows into the shared inner field whose pointee is written.
  EXPECT_EQ(R.classOf("r", 1), PosClass::MustNonConst);
}

TEST(ConstInfExtra, LinkedListTraversalStaysConstable) {
  XRig R;
  ASSERT_TRUE(R.analyze(
      "struct node { int v; struct node *next; };\n"
      "int total(struct node *head) {\n"
      "  int t = 0;\n"
      "  while (head) { t += head->v; head = head->next; }\n"
      "  return t;\n"
      "}\n",
      false))
      << R.Diags.renderAll();
  EXPECT_EQ(R.classOf("total", 0), PosClass::Either);
}

TEST(ConstInfExtra, ListMutationPinsSharedField) {
  XRig R;
  ASSERT_TRUE(R.analyze(
      "struct node { int v; struct node *next; };\n"
      "void bump_all(struct node *head) {\n"
      "  while (head) { head->v = head->v + 1; head = head->next; }\n"
      "}\n"
      "int peek(struct node *n) { return n->v; }\n",
      false))
      << R.Diags.renderAll();
  // The struct-pointer parameters themselves are never written through
  // directly... but head->v = ... writes through head's pointee? No: it
  // writes the *field cell*, which is shared, not the struct cell. The
  // struct pointers stay const-able.
  EXPECT_EQ(R.classOf("bump_all", 0), PosClass::Either);
  EXPECT_EQ(R.classOf("peek", 0), PosClass::Either);
}

TEST(ConstInfExtra, CommaExpressionYieldsRightType) {
  XRig R;
  ASSERT_TRUE(R.analyze(
      "void f(int *a, int *b) { *(a, b) = 1; }", false))
      << R.Diags.renderAll();
  EXPECT_EQ(R.classOf("f", 1), PosClass::MustNonConst);
  EXPECT_EQ(R.classOf("f", 0), PosClass::Either);
}

TEST(ConstInfExtra, RepeatedRunsAreIndependent) {
  // Two ConstInference objects over the same TU don't interfere.
  XRig R;
  ASSERT_TRUE(R.analyze("int f(int *p) { return *p; }"));
  ConstCounts First = R.Inf->counts();
  ConstInference::Options Opts;
  ConstInference Second(R.TU, R.Diags, Opts);
  ASSERT_TRUE(Second.run());
  EXPECT_EQ(Second.counts().Total, First.Total);
  EXPECT_EQ(Second.counts().PossibleConst, First.PossibleConst);
}

TEST(ConstInfExtra, LargeGeneratedProgramFullPipeline) {
  // A ~60k-line program through parse, sema, and both inference modes;
  // guards against superlinear blowups sneaking in.
  synth::SynthParams P = synth::paramsForLines(424242, 60000);
  synth::SynthProgram Prog = synth::generateProgram(P);
  ASSERT_GT(Prog.LineCount, 50000u);

  XRig R;
  ASSERT_TRUE(R.analyze(Prog.Source, /*Polymorphic=*/true))
      << R.Diags.renderAll();
  ConstCounts Poly = R.Inf->counts();
  EXPECT_GT(Poly.Total, 1000u);
  EXPECT_GE(Poly.PossibleConst, Poly.Declared);

  XRig R2;
  ASSERT_TRUE(R2.analyze(Prog.Source, /*Polymorphic=*/false));
  EXPECT_LE(R2.Inf->counts().PossibleConst, Poly.PossibleConst);
}

} // namespace

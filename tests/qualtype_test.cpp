//===- tests/qualtype_test.cpp - Qualified types, subtyping, schemes ------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests Section 2.1's qualified types, Figure 4a's subtyping rules via
/// variance-directed decomposition, Section 3.2's polymorphic constrained
/// types, and the well-formedness closure rules.
///
//===----------------------------------------------------------------------===//

#include "qual/QualType.h"
#include "qual/Subtype.h"
#include "qual/TypeScheme.h"
#include "qual/WellFormed.h"

#include <gtest/gtest.h>

using namespace quals;

namespace {

class QualTypeTest : public ::testing::Test {
protected:
  QualifierSet QS;
  QualifierId Const, Dynamic;
  TypeCtor Int{"int", {}};
  TypeCtor Fn{"->",
              {Variance::Contravariant, Variance::Covariant},
              PrintStyle::Infix};
  TypeCtor Ref{"ref", {Variance::Invariant}};
  QualTypeFactory Factory;

  void SetUp() override {
    Const = QS.add("const", Polarity::Positive);
    Dynamic = QS.add("dynamic", Polarity::Positive);
  }

  QualType intTy(ConstraintSystem &Sys, const std::string &Name) {
    return Factory.make(QualExpr::makeVar(Sys.freshVar(Name)), &Int);
  }
};

TEST_F(QualTypeTest, MakeAndAccessors) {
  ConstraintSystem Sys(QS);
  QualType I = intTy(Sys, "i");
  QualType R = Factory.make(QualExpr::makeVar(Sys.freshVar("r")), &Ref, {I});
  EXPECT_EQ(R.getCtor(), &Ref);
  EXPECT_EQ(R.getNumArgs(), 1u);
  EXPECT_EQ(R.getArg(0).getCtor(), &Int);
  EXPECT_TRUE(R.shapeEquals(R));
  EXPECT_FALSE(R.shapeEquals(I));
}

TEST_F(QualTypeTest, SubIntDecomposesToQualifierConstraint) {
  // (SubInt): Q1 <= Q2 implies Q1 int <= Q2 int.
  ConstraintSystem Sys(QS);
  QualType A = intTy(Sys, "a"), B = intTy(Sys, "b");
  ASSERT_TRUE(decomposeLeq(Sys, A, B, {"sub"}));
  Sys.addLeq(QualExpr::makeConst(QS.valueWithPresent({Const})), A.getQual(),
             {"a const"});
  ASSERT_TRUE(Sys.solve());
  EXPECT_TRUE(Sys.mustHave(B.getQual().getVar(), Const));
}

TEST_F(QualTypeTest, SubFunIsContravariantInDomain) {
  // (SubFun): Q1 (rho1 -> rho1') <= Q2 (rho2 -> rho2') requires
  // rho2 <= rho1 (contra) and rho1' <= rho2' (co).
  ConstraintSystem Sys(QS);
  QualType P1 = intTy(Sys, "p1"), R1 = intTy(Sys, "r1");
  QualType P2 = intTy(Sys, "p2"), R2 = intTy(Sys, "r2");
  QualType F1 = Factory.make(QualExpr::makeVar(Sys.freshVar("f1")), &Fn,
                             {P1, R1});
  QualType F2 = Factory.make(QualExpr::makeVar(Sys.freshVar("f2")), &Fn,
                             {P2, R2});
  ASSERT_TRUE(decomposeLeq(Sys, F1, F2, {"sub"}));
  // Seed const into P2 (the *supertype's* domain); contravariance sends it
  // into P1.
  Sys.addLeq(QualExpr::makeConst(QS.valueWithPresent({Const})), P2.getQual(),
             {"p2 const"});
  // Seed const into R1; covariance sends it into R2.
  Sys.addLeq(QualExpr::makeConst(QS.valueWithPresent({Const})), R1.getQual(),
             {"r1 const"});
  ASSERT_TRUE(Sys.solve());
  EXPECT_TRUE(Sys.mustHave(P1.getQual().getVar(), Const));
  EXPECT_FALSE(Sys.mustHave(P2.getQual().getVar(), Const) &&
               Sys.mustHave(R1.getQual().getVar(), Const) &&
               !Sys.mustHave(R2.getQual().getVar(), Const));
  EXPECT_TRUE(Sys.mustHave(R2.getQual().getVar(), Const));
}

TEST_F(QualTypeTest, SubRefForcesEqualityOfContents) {
  // (SubRef): ref contents must be *equal*, not merely subtyped -- the fix
  // for the unsound rule discussed in Section 2.4.
  ConstraintSystem Sys(QS);
  QualType C1 = intTy(Sys, "c1"), C2 = intTy(Sys, "c2");
  QualType R1 = Factory.make(QualExpr::makeVar(Sys.freshVar("ref1")), &Ref,
                             {C1});
  QualType R2 = Factory.make(QualExpr::makeVar(Sys.freshVar("ref2")), &Ref,
                             {C2});
  ASSERT_TRUE(decomposeLeq(Sys, R1, R2, {"sub"}));
  // Const flows in *both* directions between the contents.
  Sys.addLeq(QualExpr::makeConst(QS.valueWithPresent({Const})), C2.getQual(),
             {"c2 const"});
  ASSERT_TRUE(Sys.solve());
  EXPECT_TRUE(Sys.mustHave(C1.getQual().getVar(), Const));
}

TEST_F(QualTypeTest, MismatchedShapesRejected) {
  ConstraintSystem Sys(QS);
  QualType I = intTy(Sys, "i");
  QualType R = Factory.make(QualExpr::makeVar(Sys.freshVar("r")), &Ref, {I});
  EXPECT_FALSE(decomposeLeq(Sys, I, R, {"bad"}));
}

TEST_F(QualTypeTest, SpreadCreatesFreshVariablesEverywhere) {
  ConstraintSystem Sys(QS);
  QualType I = intTy(Sys, "i");
  QualType F = Factory.make(QualExpr::makeVar(Sys.freshVar("f")), &Fn,
                            {I, I});
  unsigned Before = Sys.getNumVars();
  QualType Spread = Factory.spread(Sys, F, "fresh");
  EXPECT_EQ(Sys.getNumVars(), Before + 3); // one per level
  EXPECT_TRUE(Spread.shapeEquals(F));
  EXPECT_NE(Spread.getQual().getVar(), F.getQual().getVar());
}

TEST_F(QualTypeTest, SubstituteRemapsOnlyMappedVars) {
  ConstraintSystem Sys(QS);
  QualVarId A = Sys.freshVar("a"), B = Sys.freshVar("b"),
            C = Sys.freshVar("c");
  QualType I = Factory.make(QualExpr::makeVar(A), &Int);
  QualType F = Factory.make(QualExpr::makeVar(B), &Fn, {I, I});
  QualType Out = Factory.substitute(F, [&](QualVarId V) {
    return QualExpr::makeVar(V == A ? C : V);
  });
  EXPECT_EQ(Out.getQual().getVar(), B);
  EXPECT_EQ(Out.getArg(0).getQual().getVar(), C);
  EXPECT_EQ(Out.getArg(1).getQual().getVar(), C);
}

TEST_F(QualTypeTest, ToStringShowsQualifiersAndStructure) {
  ConstraintSystem Sys(QS);
  QualType I = Factory.make(
      QualExpr::makeConst(QS.valueWithPresent({Const})), &Int);
  QualType R = Factory.make(QualExpr::makeConst(QS.bottom()), &Ref, {I});
  EXPECT_EQ(toString(QS, R), "ref(const int)");
  QualType F = Factory.make(QualExpr::makeConst(QS.bottom()), &Fn, {I, I});
  EXPECT_EQ(toString(QS, F), "(const int -> const int)");
}

//===----------------------------------------------------------------------===//
// Polymorphic schemes (Section 3.2)
//===----------------------------------------------------------------------===//

TEST_F(QualTypeTest, GeneralizeBindsPostWatermarkVars) {
  ConstraintSystem Sys(QS);
  QualVarId EnvVar = Sys.freshVar("env");
  (void)EnvVar;
  Watermark Mark = takeWatermark(Sys);
  QualType I = intTy(Sys, "body");
  QualScheme S = QualScheme::generalize(Sys, I, Mark);
  EXPECT_TRUE(S.isPolymorphic());
  EXPECT_EQ(S.getNumBoundVars(), 1u);
  EXPECT_TRUE(S.isBound(I.getQual().getVar()));
  EXPECT_FALSE(S.isBound(0));
}

TEST_F(QualTypeTest, InstantiateCreatesIndependentCopies) {
  // The paper's id example: forall k. k int -> k int applied at const and
  // non-const without interference.
  ConstraintSystem Sys(QS);
  Watermark Mark = takeWatermark(Sys);
  QualVarId K = Sys.freshVar("k");
  QualType I = Factory.make(QualExpr::makeVar(K), &Int);
  QualType IdTy = Factory.make(QualExpr::makeVar(Sys.freshVar("fn")), &Fn,
                               {I, I});
  QualScheme S = QualScheme::generalize(Sys, IdTy, Mark);

  QualType Use1 = S.instantiate(Sys, Factory);
  QualType Use2 = S.instantiate(Sys, Factory);
  // Force const on instance 1's parameter only.
  Sys.addLeq(QualExpr::makeConst(QS.valueWithPresent({Const})),
             Use1.getArg(0).getQual(), {"use1 const"});
  Sys.addLeq(Use2.getArg(0).getQual(),
             QualExpr::makeConst(QS.notQual(Const)), {"use2 not const"});
  EXPECT_TRUE(Sys.isSatisfiable()); // poly: no interference
  // Within instance 1, param and result share the same fresh variable.
  EXPECT_EQ(Use1.getArg(0).getQual().getVar(),
            Use1.getArg(1).getQual().getVar());
  EXPECT_NE(Use1.getArg(0).getQual().getVar(),
            Use2.getArg(0).getQual().getVar());
}

TEST_F(QualTypeTest, MonomorphicSchemeSharesVariables) {
  // Without generalization the same variables are shared, so the two uses
  // above become inconsistent -- this is exactly the mono-vs-poly
  // difference the paper's experiment measures.
  ConstraintSystem Sys(QS);
  QualVarId K = Sys.freshVar("k");
  QualType I = Factory.make(QualExpr::makeVar(K), &Int);
  QualType IdTy = Factory.make(QualExpr::makeVar(Sys.freshVar("fn")), &Fn,
                               {I, I});
  QualScheme S = QualScheme::monomorphic(IdTy);
  QualType Use1 = S.instantiate(Sys, Factory);
  QualType Use2 = S.instantiate(Sys, Factory);
  Sys.addLeq(QualExpr::makeConst(QS.valueWithPresent({Const})),
             Use1.getArg(0).getQual(), {"use1 const"});
  Sys.addLeq(Use2.getArg(0).getQual(),
             QualExpr::makeConst(QS.notQual(Const)), {"use2 not const"});
  EXPECT_FALSE(Sys.isSatisfiable());
}

TEST_F(QualTypeTest, CannedConstraintsReplayPerInstance) {
  // A scheme whose body variable is bounded below by const: every instance
  // must inherit the bound.
  ConstraintSystem Sys(QS);
  Watermark Mark = takeWatermark(Sys);
  QualVarId K = Sys.freshVar("k");
  Sys.addLeq(QualExpr::makeConst(QS.valueWithPresent({Const})),
             QualExpr::makeVar(K), {"k is const"});
  QualType I = Factory.make(QualExpr::makeVar(K), &Int);
  QualScheme S = QualScheme::generalize(Sys, I, Mark);
  EXPECT_EQ(S.getCannedConstraints().size(), 1u);

  QualType Use = S.instantiate(Sys, Factory);
  ASSERT_TRUE(Sys.solve());
  EXPECT_TRUE(Sys.mustHave(Use.getQual().getVar(), Const));
}

TEST_F(QualTypeTest, ConstraintsToFreeVarsKeepLinkingInstances) {
  // A bound variable constrained against a *free* (environment) variable:
  // each instance re-links to the same free variable.
  ConstraintSystem Sys(QS);
  QualVarId Global = Sys.freshVar("global");
  Watermark Mark = takeWatermark(Sys);
  QualVarId K = Sys.freshVar("k");
  Sys.addLeq(QualExpr::makeVar(K), QualExpr::makeVar(Global), {"k<=global"});
  QualType I = Factory.make(QualExpr::makeVar(K), &Int);
  QualScheme S = QualScheme::generalize(Sys, I, Mark);

  QualType Use = S.instantiate(Sys, Factory);
  Sys.addLeq(QualExpr::makeConst(QS.valueWithPresent({Dynamic})),
             Use.getQual(), {"use dynamic"});
  ASSERT_TRUE(Sys.solve());
  EXPECT_TRUE(Sys.mustHave(Global, Dynamic));
}

TEST_F(QualTypeTest, EscapeHookPreventsGeneralization) {
  ConstraintSystem Sys(QS);
  Watermark Mark = takeWatermark(Sys);
  QualVarId K = Sys.freshVar("k");
  QualType I = Factory.make(QualExpr::makeVar(K), &Int);
  QualScheme S = QualScheme::generalize(
      Sys, I, Mark, [K](QualVarId V) { return V == K; });
  EXPECT_FALSE(S.isPolymorphic());
}

//===----------------------------------------------------------------------===//
// Well-formedness (Section 2's binding-time example)
//===----------------------------------------------------------------------===//

TEST_F(QualTypeTest, UpwardClosedPropagatesDynamicOutOfComponents) {
  // static (dynamic a -> dynamic b) is not well-formed: with dynamic upward
  // closed, a dynamic component forces the function itself dynamic.
  ConstraintSystem Sys(QS);
  QualType P = intTy(Sys, "p"), R = intTy(Sys, "r");
  QualType F = Factory.make(QualExpr::makeVar(Sys.freshVar("f")), &Fn,
                            {P, R});
  requireUpwardClosed(Sys, F, Dynamic, {"wf"});
  Sys.addLeq(QualExpr::makeConst(QS.valueWithPresent({Dynamic})),
             P.getQual(), {"param dynamic"});
  ASSERT_TRUE(Sys.solve());
  EXPECT_TRUE(Sys.mustHave(F.getQual().getVar(), Dynamic));
  // And asserting the function static is now a violation.
  Sys.addLeq(F.getQual(), QualExpr::makeConst(QS.notQual(Dynamic)),
             {"fn static"});
  EXPECT_FALSE(Sys.isSatisfiable());
}

TEST_F(QualTypeTest, DownwardClosedPropagatesIntoComponents) {
  ConstraintSystem Sys(QS);
  QualType C = intTy(Sys, "c");
  QualType R = Factory.make(QualExpr::makeVar(Sys.freshVar("r")), &Ref, {C});
  requireDownwardClosed(Sys, R, Const, {"wf"});
  Sys.addLeq(QualExpr::makeConst(QS.valueWithPresent({Const})), R.getQual(),
             {"ref const"});
  ASSERT_TRUE(Sys.solve());
  EXPECT_TRUE(Sys.mustHave(C.getQual().getVar(), Const));
}

TEST_F(QualTypeTest, CheckNoInnerWithoutOuterOnSolvedTypes) {
  ConstraintSystem Sys(QS);
  QualType P = intTy(Sys, "p"), R = intTy(Sys, "r");
  QualType F = Factory.make(QualExpr::makeVar(Sys.freshVar("f")), &Fn,
                            {P, R});
  Sys.addLeq(QualExpr::makeConst(QS.valueWithPresent({Dynamic})),
             P.getQual(), {"param dynamic"});
  ASSERT_TRUE(Sys.solve());
  // Parent not dynamic but child dynamic: ill-formed.
  EXPECT_FALSE(checkNoInnerWithoutOuter(Sys, F, Dynamic, Dynamic));
  Sys.addLeq(QualExpr::makeConst(QS.valueWithPresent({Dynamic})),
             F.getQual(), {"fn dynamic"});
  ASSERT_TRUE(Sys.solve());
  EXPECT_TRUE(checkNoInnerWithoutOuter(Sys, F, Dynamic, Dynamic));
}

} // namespace

//===- tests/server_soak_test.cpp - Server memory-stability soak ----------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
//
// The long-running-daemon property the batch tools never had to hold:
// per-request state (SourceManager, StringInterner, AST arenas, constraint
// systems) must be fully torn down after every request, so a thousand
// requests cost the same residency as ten. Two angles:
//
//   \li The warm path: after the first request fills the cache, repeats
//       are answered without building any analysis context at all --
//       process-wide arena allocation must stay flat.
//   \li The cold path: with caching disabled every request rebuilds the
//       full context; arena allocation grows linearly (each run allocates)
//       but resident memory must not, because every context is freed.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"
#include "support/Allocator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <unistd.h>

using namespace quals;
using namespace quals::serve;

namespace {

/// A thousand analyze requests over the same source (id varies; the cache
/// key does not), ending in a stats request.
std::string makeSoakStream(unsigned Requests) {
  std::string In;
  In.reserve(Requests * 128);
  for (unsigned I = 0; I != Requests; ++I)
    In += "{\"id\":" + std::to_string(I) +
          ",\"method\":\"analyze\",\"params\":{\"source\":"
          "\"int soak(int *p, char *q) { *q = 'x'; return *p; }\","
          "\"name\":\"soak.c\"}}\n";
  return In;
}

/// Current resident set in bytes via /proc/self/statm; 0 when unavailable
/// (non-Linux), letting callers skip the assertion.
size_t residentBytes() {
  std::FILE *F = std::fopen("/proc/self/statm", "r");
  if (!F)
    return 0;
  unsigned long Size = 0, Resident = 0;
  int Got = std::fscanf(F, "%lu %lu", &Size, &Resident);
  std::fclose(F);
  if (Got != 2)
    return 0;
  return static_cast<size_t>(Resident) * static_cast<size_t>(getpagesize());
}

} // namespace

TEST(ServerSoak, WarmPathAllocatesNothingPerRequest) {
  ServerConfig Config;
  Server S(Config);
  // Prime the cache with one cold request.
  {
    std::istringstream In(makeSoakStream(1));
    std::ostringstream Out;
    ASSERT_EQ(S.run(In, Out), 0);
  }
  ASSERT_EQ(S.cache().stats().Misses, 1u);

  uint64_t ArenaBefore = BumpPtrAllocator::totalBytesAllocated();
  std::istringstream In(makeSoakStream(1000));
  std::ostringstream Out;
  ASSERT_EQ(S.run(In, Out), 0);
  uint64_t ArenaAfter = BumpPtrAllocator::totalBytesAllocated();

  EXPECT_EQ(S.cache().stats().Hits, 1000u);
  // Cache hits never build an analysis context, so process-wide arena
  // allocation is flat across a thousand requests.
  EXPECT_EQ(ArenaAfter, ArenaBefore);
  // One response line per request, all identical to each other modulo id.
  std::string Responses = Out.str();
  EXPECT_EQ(std::count(Responses.begin(), Responses.end(), '\n'), 1000);
}

TEST(ServerSoak, ColdPathFreesEveryRequestContext) {
  ServerConfig Config;
  Config.CacheMaxBytes = 0; // Force the full pipeline on every request.
  Server S(Config);

  // Warm up allocator slabs, interner tables, stdio buffers.
  {
    std::istringstream In(makeSoakStream(50));
    std::ostringstream Out;
    ASSERT_EQ(S.run(In, Out), 0);
  }
  size_t RssBefore = residentBytes();
  if (RssBefore == 0)
    GTEST_SKIP() << "/proc/self/statm unavailable";

  uint64_t ArenaBefore = BumpPtrAllocator::totalBytesAllocated();
  std::istringstream In(makeSoakStream(1000));
  std::ostringstream Out;
  ASSERT_EQ(S.run(In, Out), 0);
  uint64_t ArenaTurned = BumpPtrAllocator::totalBytesAllocated() -
                         ArenaBefore;
  size_t RssAfter = residentBytes();

  EXPECT_EQ(S.cache().stats().Hits, 0u);
  // The pipeline genuinely ran 1000 times (each run allocates arenas)...
  EXPECT_GT(ArenaTurned, 1000u * 1024u);
  // ...but every context was freed: residency grew by at most a small
  // constant (malloc pooling jitter), not by 1000 contexts. One context
  // costs ~100 KiB of arena, so leaking them all would add ~100 MiB.
  EXPECT_LT(RssAfter, RssBefore + (16u << 20))
      << "RSS grew " << (RssAfter - RssBefore) / 1024 << " KiB over 1000 "
      << "uncached requests -- per-request state is being retained";
}

//===- tests/flow_nonnull_test.cpp - Flow-sensitive nonnull tests ---------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the Section 6 future-work implementation: per-program-point types
/// with subtyping constraints between them, strong updates dropping the
/// old constraint. Side-by-side with the flow-INsensitive checker where
/// the difference matters.
///
//===----------------------------------------------------------------------===//

#include "apps/FlowNonNull.h"
#include "apps/NonNull.h"
#include "cfront/CParser.h"
#include "cfront/CSema.h"

#include <gtest/gtest.h>

using namespace quals;
using namespace quals::apps;

namespace {

struct FlowRig {
  SourceManager SM;
  DiagnosticEngine Diags{SM};
  cfront::CAstContext Ast;
  cfront::CTypeContext Types;
  StringInterner Idents;
  cfront::TranslationUnit TU;
  FlowNonNullChecker Flow;
  NonNullChecker Insensitive;

  bool parse(const std::string &Source) {
    if (!cfront::parseCSource(SM, "flow.c", Source, Ast, Types, Idents,
                              Diags, TU))
      return false;
    cfront::CSema Sema(Ast, Types, Idents, Diags);
    return Sema.analyze(TU);
  }
};

TEST(FlowNonNull, StrongUpdateKillsOldNullness) {
  // The headline example from the Section 6 sketch: a strong update drops
  // the constraint from the old program point.
  FlowRig R;
  ASSERT_TRUE(R.parse(
      "int f(void) { int x; int *p = 0; p = &x; return *p; }"));
  EXPECT_TRUE(R.Flow.analyze(R.TU))
      << (R.Flow.warnings().empty() ? std::string()
                                    : R.Flow.warnings()[0].Message);
  // The flow-INsensitive checker cannot tell the versions apart and warns.
  EXPECT_FALSE(R.Insensitive.analyze(R.TU));
}

TEST(FlowNonNull, NullStillCaughtBeforeTheUpdate) {
  FlowRig R;
  ASSERT_TRUE(R.parse(
      "int f(void) { int x; int *p = 0; int v = *p; p = &x; return v; }"));
  EXPECT_FALSE(R.Flow.analyze(R.TU));
  ASSERT_EQ(R.Flow.warnings().size(), 1u);
}

TEST(FlowNonNull, UninitializedPointerWarns) {
  FlowRig R;
  ASSERT_TRUE(R.parse("int f(void) { int *p; return *p; }"));
  EXPECT_FALSE(R.Flow.analyze(R.TU));
}

TEST(FlowNonNull, BranchJoinCarriesNullness) {
  // One arm assigns null: the join point may be null.
  FlowRig R;
  ASSERT_TRUE(R.parse(
      "int f(int c) { int x; int *p = &x; if (c) p = 0; return *p; }"));
  EXPECT_FALSE(R.Flow.analyze(R.TU));
}

TEST(FlowNonNull, BothArmsSafeIsAccepted) {
  FlowRig R;
  ASSERT_TRUE(R.parse(
      "int f(int c) { int x; int y; int *p = 0;\n"
      "  if (c) p = &x; else p = &y;\n"
      "  return *p; }"));
  EXPECT_TRUE(R.Flow.analyze(R.TU))
      << R.Flow.warnings()[0].Message;
}

TEST(FlowNonNull, LoopBackEdgeCarriesNullness) {
  // The loop body nulls the pointer; the next iteration's dereference must
  // see it through the back edge.
  FlowRig R;
  ASSERT_TRUE(R.parse(
      "int f(int n) { int x; int *p = &x; int t = 0;\n"
      "  while (n--) { t += *p; p = 0; }\n"
      "  return t; }"));
  EXPECT_FALSE(R.Flow.analyze(R.TU));
}

TEST(FlowNonNull, LoopWithReassignmentIsAccepted) {
  FlowRig R;
  ASSERT_TRUE(R.parse(
      "int f(int n) { int x; int *p = &x; int t = 0;\n"
      "  while (n--) { t += *p; p = &x; }\n"
      "  return t; }"));
  EXPECT_TRUE(R.Flow.analyze(R.TU))
      << R.Flow.warnings()[0].Message;
}

TEST(FlowNonNull, NullnessFlowsThroughCopies) {
  FlowRig R;
  ASSERT_TRUE(R.parse(
      "int f(void) { int *a = 0; int *b = a; return *b; }"));
  EXPECT_FALSE(R.Flow.analyze(R.TU));
}

TEST(FlowNonNull, CopyThenStrongUpdateOfSourceIsSafe) {
  // b copies a's null, then a is fixed; b keeps the old nullness but b is
  // never dereferenced -- only a is, after its strong update.
  FlowRig R;
  ASSERT_TRUE(R.parse(
      "int f(void) { int x; int *a = 0; int *b = a; a = &x; return *a; }"));
  EXPECT_TRUE(R.Flow.analyze(R.TU))
      << R.Flow.warnings()[0].Message;
}

TEST(FlowNonNull, ArrowAndSubscriptChecked) {
  FlowRig R;
  ASSERT_TRUE(R.parse(
      "struct s { int v; };\n"
      "int f(void) { struct s *p = 0; int *q = 0;\n"
      "  return p->v + q[1]; }"));
  EXPECT_FALSE(R.Flow.analyze(R.TU));
  EXPECT_EQ(R.Flow.warnings().size(), 2u);
}

TEST(FlowNonNull, ConditionalExpressionMergesArms) {
  FlowRig R;
  ASSERT_TRUE(R.parse(
      "int f(int c) { int x; int *p = &x;\n"
      "  int t = c ? (p = 0, 1) : 2;\n"
      "  return *p + t; }"));
  EXPECT_FALSE(R.Flow.analyze(R.TU));
}

TEST(FlowNonNull, ParametersAssumedNonNullOnEntry) {
  FlowRig R;
  ASSERT_TRUE(R.parse("int f(int *p) { return *p; }"));
  EXPECT_TRUE(R.Flow.analyze(R.TU));
}

} // namespace

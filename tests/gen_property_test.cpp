//===- tests/gen_property_test.cpp - Generator knob monotonicity ----------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property tests tying the generator's knobs to the analysis outcomes the
/// benchmark calibration relies on: raising ConstDeclRate raises the
/// declared count, raising WriterRate raises the pinned (must-non-const)
/// count, and every knob setting still yields a correct (analyzable)
/// program. These are the invariants that make the Table 2 calibration in
/// bench/BenchUtil.h meaningful rather than accidental.
///
//===----------------------------------------------------------------------===//

#include "cfront/CParser.h"
#include "cfront/CSema.h"
#include "constinf/ConstInfer.h"
#include "gen/SynthGen.h"

#include <gtest/gtest.h>

using namespace quals;
using namespace quals::cfront;
using namespace quals::constinf;
using namespace quals::synth;

namespace {

ConstCounts analyzeCounts(const SynthProgram &Prog, bool Poly) {
  SourceManager SM;
  DiagnosticEngine Diags(SM);
  CAstContext Ast;
  CTypeContext Types;
  StringInterner Idents;
  TranslationUnit TU;
  EXPECT_TRUE(parseCSource(SM, "gen.c", Prog.Source, Ast, Types, Idents,
                           Diags, TU))
      << Diags.renderAll();
  CSema Sema(Ast, Types, Idents, Diags);
  EXPECT_TRUE(Sema.analyze(TU)) << Diags.renderAll();
  ConstInference::Options Opts;
  Opts.Polymorphic = Poly;
  ConstInference Inf(TU, Diags, Opts);
  EXPECT_TRUE(Inf.run()) << Diags.renderAll();
  return Inf.counts();
}

TEST(GenProperty, ConstDeclRateDrivesDeclaredCount) {
  SynthParams P;
  P.Seed = 11;
  P.NumFunctions = 120;
  unsigned Previous = 0;
  for (double Rate : {0.0, 0.3, 0.6, 0.9}) {
    P.ConstDeclRate = Rate;
    ConstCounts C = analyzeCounts(generateProgram(P), false);
    EXPECT_GE(C.Declared, Previous) << "rate " << Rate;
    Previous = C.Declared;
  }
  EXPECT_GT(Previous, 0u);
}

TEST(GenProperty, ZeroConstRateMeansZeroDeclared) {
  SynthParams P;
  P.Seed = 12;
  P.NumFunctions = 80;
  P.ConstDeclRate = 0.0;
  ConstCounts C = analyzeCounts(generateProgram(P), false);
  EXPECT_EQ(C.Declared, 0u);
  // Even with nothing declared, inference finds const-able positions.
  EXPECT_GT(C.PossibleConst, 0u);
}

TEST(GenProperty, WriterRateDrivesPinnedCount) {
  SynthParams P;
  P.Seed = 13;
  P.NumFunctions = 120;
  P.ConstDeclRate = 0.2;
  double PreviousFrac = -1.0;
  for (double Rate : {0.1, 0.5, 0.9}) {
    P.WriterRate = Rate;
    ConstCounts C = analyzeCounts(generateProgram(P), false);
    double Frac = double(C.MustNonConst) / C.Total;
    EXPECT_GT(Frac, PreviousFrac) << "rate " << Rate;
    PreviousFrac = Frac;
  }
}

TEST(GenProperty, ExtremeKnobsStillYieldCorrectPrograms) {
  for (double Const : {0.0, 1.0})
    for (double Writer : {0.0, 1.0})
      for (double Lib : {0.0, 1.0}) {
        SynthParams P;
        P.Seed = 1000 + unsigned(Const * 4 + Writer * 2 + Lib);
        P.NumFunctions = 60;
        P.ConstDeclRate = Const;
        P.WriterRate = Writer;
        P.LibraryCallRate = Lib;
        P.CastRate = 0.5;
        P.VarargsCallRate = 0.5;
        P.SccRate = 0.3;
        P.IdLikeRate = 0.3;
        ConstCounts C = analyzeCounts(generateProgram(P), true);
        EXPECT_EQ(C.PossibleConst + C.MustNonConst, C.Total);
      }
}

TEST(GenProperty, SuiteSizedProgramsStayInCalibrationBand) {
  // The paper band the calibration targets: Declared <= Mono <= Poly and a
  // poly gain between 2% and 25%.
  SynthParams P = paramsForLines(777, 9000);
  SynthProgram Prog = generateProgram(P);
  ConstCounts Mono = analyzeCounts(Prog, false);
  ConstCounts Poly = analyzeCounts(Prog, true);
  ASSERT_GT(Mono.PossibleConst, 0u);
  EXPECT_LE(Mono.Declared, Mono.PossibleConst);
  EXPECT_LE(Mono.PossibleConst, Poly.PossibleConst);
  double Gain = double(Poly.PossibleConst - Mono.PossibleConst) /
                Mono.PossibleConst;
  EXPECT_GT(Gain, 0.02);
  EXPECT_LT(Gain, 0.25);
}

} // namespace

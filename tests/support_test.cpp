//===- tests/support_test.cpp - Support substrate unit tests --------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "support/Allocator.h"
#include "support/Scc.h"
#include "support/SourceManager.h"
#include "support/StringInterner.h"
#include "support/TextTable.h"
#include "support/Timer.h"
#include "support/UnionFind.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>

using namespace quals;

//===----------------------------------------------------------------------===//
// BumpPtrAllocator
//===----------------------------------------------------------------------===//

TEST(Allocator, AllocatesAlignedMemory) {
  BumpPtrAllocator A;
  void *P1 = A.allocate(3, 1);
  void *P8 = A.allocate(16, 8);
  void *P16 = A.allocate(32, 16);
  EXPECT_NE(P1, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P8) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P16) % 16, 0u);
}

TEST(Allocator, CreateConstructsObjects) {
  BumpPtrAllocator A;
  struct Point {
    int X, Y;
    Point(int X, int Y) : X(X), Y(Y) {}
  };
  Point *P = A.create<Point>(3, 4);
  EXPECT_EQ(P->X, 3);
  EXPECT_EQ(P->Y, 4);
}

TEST(Allocator, HandlesLargeAllocations) {
  BumpPtrAllocator A;
  // Larger than the default slab: must still succeed.
  void *P = A.allocate(1 << 20, 8);
  EXPECT_NE(P, nullptr);
  std::memset(P, 0xAB, 1 << 20);
  EXPECT_GE(A.bytesAllocated(), size_t(1 << 20));
}

TEST(Allocator, ManySmallAllocationsStayDistinct) {
  BumpPtrAllocator A;
  std::set<void *> Seen;
  for (int I = 0; I != 10000; ++I)
    Seen.insert(A.allocate(24, 8));
  EXPECT_EQ(Seen.size(), 10000u);
}

TEST(Allocator, CopyArrayCopiesContents) {
  BumpPtrAllocator A;
  int Src[] = {1, 2, 3, 4};
  int *Copy = A.copyArray(Src, 4);
  Src[0] = 99;
  EXPECT_EQ(Copy[0], 1);
  EXPECT_EQ(Copy[3], 4);
  EXPECT_EQ(A.copyArray(Src, 0), nullptr);
}

//===----------------------------------------------------------------------===//
// StringInterner
//===----------------------------------------------------------------------===//

TEST(StringInterner, EqualStringsShareStorage) {
  StringInterner SI;
  std::string A = "hello";
  std::string B = "hello";
  std::string_view VA = SI.intern(A);
  std::string_view VB = SI.intern(B);
  EXPECT_EQ(VA.data(), VB.data());
  EXPECT_EQ(SI.size(), 1u);
}

TEST(StringInterner, DistinctStringsStayDistinct) {
  StringInterner SI;
  std::string_view A = SI.intern("alpha");
  std::string_view B = SI.intern("beta");
  EXPECT_NE(A.data(), B.data());
  EXPECT_EQ(SI.size(), 2u);
}

TEST(StringInterner, SurvivesManyInsertions) {
  StringInterner SI;
  std::string_view First = SI.intern("stable");
  for (int I = 0; I != 5000; ++I)
    SI.intern("key" + std::to_string(I));
  // The early view must still be valid and re-internable to the same data.
  EXPECT_EQ(SI.intern("stable").data(), First.data());
}

//===----------------------------------------------------------------------===//
// UnionFind
//===----------------------------------------------------------------------===//

TEST(UnionFind, SingletonsAreTheirOwnRepresentatives) {
  UnionFind UF;
  unsigned A = UF.makeSet();
  unsigned B = UF.makeSet();
  EXPECT_EQ(UF.find(A), A);
  EXPECT_EQ(UF.find(B), B);
  EXPECT_FALSE(UF.connected(A, B));
}

TEST(UnionFind, UniteMergesTransitively) {
  UnionFind UF;
  unsigned A = UF.makeSet(), B = UF.makeSet(), C = UF.makeSet();
  UF.unite(A, B);
  UF.unite(B, C);
  EXPECT_TRUE(UF.connected(A, C));
  unsigned D = UF.makeSet();
  EXPECT_FALSE(UF.connected(A, D));
}

TEST(UnionFind, LargeChainCompresses) {
  UnionFind UF;
  std::vector<unsigned> Ids;
  for (int I = 0; I != 10000; ++I)
    Ids.push_back(UF.makeSet());
  for (int I = 1; I != 10000; ++I)
    UF.unite(Ids[I - 1], Ids[I]);
  EXPECT_TRUE(UF.connected(Ids[0], Ids[9999]));
}

//===----------------------------------------------------------------------===//
// SCC
//===----------------------------------------------------------------------===//

TEST(Scc, SingleNodesNoEdges) {
  Digraph G(3);
  SccResult R = computeSccs(G);
  EXPECT_EQ(R.Components.size(), 3u);
  for (unsigned I = 0; I != 3; ++I)
    EXPECT_EQ(R.Components[R.ComponentOf[I]].front(), I);
}

TEST(Scc, SimpleCycleIsOneComponent) {
  Digraph G(3);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 0);
  SccResult R = computeSccs(G);
  ASSERT_EQ(R.Components.size(), 1u);
  EXPECT_EQ(R.Components[0].size(), 3u);
}

TEST(Scc, ReverseTopologicalOrder) {
  // 0 -> 1 -> 2 (a chain): callees (2) must appear before callers (0).
  Digraph G(3);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  SccResult R = computeSccs(G);
  ASSERT_EQ(R.Components.size(), 3u);
  EXPECT_LT(R.ComponentOf[2], R.ComponentOf[1]);
  EXPECT_LT(R.ComponentOf[1], R.ComponentOf[0]);
}

TEST(Scc, MixedGraphMatchesPaperFdgShape) {
  // Two mutually recursive functions {1,2} called by 0, calling leaf 3.
  Digraph G(4);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 1);
  G.addEdge(2, 3);
  SccResult R = computeSccs(G);
  ASSERT_EQ(R.Components.size(), 3u);
  EXPECT_EQ(R.ComponentOf[1], R.ComponentOf[2]);
  EXPECT_LT(R.ComponentOf[3], R.ComponentOf[1]);
  EXPECT_LT(R.ComponentOf[1], R.ComponentOf[0]);
}

TEST(Scc, SelfLoopIsItsOwnComponent) {
  Digraph G(2);
  G.addEdge(0, 0);
  G.addEdge(0, 1);
  SccResult R = computeSccs(G);
  EXPECT_EQ(R.Components.size(), 2u);
  EXPECT_NE(R.ComponentOf[0], R.ComponentOf[1]);
}

TEST(Scc, DeepChainDoesNotOverflow) {
  // The iterative Tarjan must handle recursion depths that would overflow a
  // recursive implementation.
  constexpr unsigned N = 200000;
  Digraph G(N);
  for (unsigned I = 0; I + 1 != N; ++I)
    G.addEdge(I, I + 1);
  SccResult R = computeSccs(G);
  EXPECT_EQ(R.Components.size(), N);
}

//===----------------------------------------------------------------------===//
// SourceManager
//===----------------------------------------------------------------------===//

TEST(SourceManager, MapsOffsetsToLineAndColumn) {
  SourceManager SM;
  unsigned Id = SM.addBuffer("test.q", "abc\ndef\nghi\n");
  PresumedLoc P = SM.getPresumedLoc(SM.getLocForOffset(Id, 5));
  EXPECT_EQ(P.Filename, "test.q");
  EXPECT_EQ(P.Line, 2u);
  EXPECT_EQ(P.Column, 2u);
}

TEST(SourceManager, FirstCharacterIsLineOneColumnOne) {
  SourceManager SM;
  unsigned Id = SM.addBuffer("a.q", "xyz");
  PresumedLoc P = SM.getPresumedLoc(SM.getBufferStart(Id));
  EXPECT_EQ(P.Line, 1u);
  EXPECT_EQ(P.Column, 1u);
}

TEST(SourceManager, MultipleBuffersDisjoint) {
  SourceManager SM;
  unsigned A = SM.addBuffer("a.q", "aaa");
  unsigned B = SM.addBuffer("b.q", "bbbb\nbb");
  PresumedLoc PA = SM.getPresumedLoc(SM.getLocForOffset(A, 1));
  PresumedLoc PB = SM.getPresumedLoc(SM.getLocForOffset(B, 5));
  EXPECT_EQ(PA.Filename, "a.q");
  EXPECT_EQ(PB.Filename, "b.q");
  EXPECT_EQ(PB.Line, 2u);
}

TEST(SourceManager, InvalidLocHasInvalidPresumedLoc) {
  SourceManager SM;
  SM.addBuffer("a.q", "aaa");
  EXPECT_FALSE(SM.getPresumedLoc(SourceLoc()).isValid());
}

TEST(SourceManager, GetLineTextReturnsWholeLine) {
  SourceManager SM;
  unsigned Id = SM.addBuffer("a.q", "first\nsecond line\nthird");
  EXPECT_EQ(SM.getLineText(SM.getLocForOffset(Id, 8)), "second line");
  EXPECT_EQ(SM.getLineText(SM.getLocForOffset(Id, 20)), "third");
}

//===----------------------------------------------------------------------===//
// TextTable
//===----------------------------------------------------------------------===//

TEST(TextTable, AlignsColumns) {
  TextTable T;
  T.addColumn("Name");
  T.addColumn("Lines", Align::Right);
  T.addRow({"woman-3.0a", "1496"});
  T.addRow({"uucp-1.04", "36913"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("Name"), std::string::npos);
  EXPECT_NE(Out.find("36913"), std::string::npos);
  // Right-aligned numbers end at the same column.
  size_t L1 = Out.find("1496");
  size_t L2 = Out.find("36913");
  ASSERT_NE(L1, std::string::npos);
  ASSERT_NE(L2, std::string::npos);
}

TEST(TextTable, StackedBarUsesFullWidth) {
  std::string Bar = renderStackedBar(
      {{"a", 0.25, '#'}, {"b", 0.25, '+'}, {"c", 0.5, '.'}}, 40);
  EXPECT_EQ(Bar.size(), 40u);
  EXPECT_EQ(std::count(Bar.begin(), Bar.end(), '#'), 10);
  EXPECT_EQ(std::count(Bar.begin(), Bar.end(), '+'), 10);
  EXPECT_EQ(std::count(Bar.begin(), Bar.end(), '.'), 20);
}

TEST(TextTable, EmptyTableRendersHeaderOnly) {
  TextTable T;
  T.addColumn("Metric");
  T.addColumn("Value", Align::Right);
  std::string Out = T.render();
  EXPECT_NE(Out.find("Metric"), std::string::npos);
  EXPECT_NE(Out.find("Value"), std::string::npos);
  // Header plus separator: exactly two lines of output.
  EXPECT_EQ(std::count(Out.begin(), Out.end(), '\n'), 2);
}

TEST(TextTable, SingleRowTable) {
  TextTable T;
  T.addColumn("Name");
  T.addRow({"only"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("Name"), std::string::npos);
  EXPECT_NE(Out.find("only"), std::string::npos);
  EXPECT_EQ(std::count(Out.begin(), Out.end(), '\n'), 3);
}

TEST(TextTable, WideCellStretchesColumn) {
  TextTable T;
  T.addColumn("K");
  T.addColumn("V", Align::Right);
  std::string Wide(120, 'w');
  T.addRow({Wide, "1"});
  T.addRow({"x", "22"});
  std::string Out = T.render();
  EXPECT_NE(Out.find(Wide), std::string::npos);
  // Every line pads to the widened first column, so all data lines are at
  // least as long as the wide cell itself.
  size_t LineStart = 0;
  int Lines = 0;
  while (LineStart < Out.size()) {
    size_t LineEnd = Out.find('\n', LineStart);
    if (LineEnd == std::string::npos)
      LineEnd = Out.size();
    EXPECT_GE(LineEnd - LineStart, Wide.size());
    LineStart = LineEnd + 1;
    ++Lines;
  }
  EXPECT_EQ(Lines, 4); // header, separator, two rows
}

TEST(TextTable, StackedBarEmptySegments) {
  // No segments means nothing to draw: the bar is empty, not padded.
  EXPECT_TRUE(renderStackedBar({}, 20).empty());
}

TEST(TextTable, StackedBarSingleFullSegment) {
  std::string Bar = renderStackedBar({{"all", 1.0, '#'}}, 16);
  EXPECT_EQ(Bar, std::string(16, '#'));
}

//===----------------------------------------------------------------------===//
// Timer
//===----------------------------------------------------------------------===//

namespace {
/// Spins until the live timer has visibly advanced; keeps the tests free of
/// sleeps while still exercising real clock movement.
void spinUntilAdvanced(const quals::Timer &T, double Floor) {
  while (T.seconds() <= Floor) {
  }
}
} // namespace

TEST(Timer, RunsOnConstruction) {
  Timer T;
  EXPECT_TRUE(T.isRunning());
  spinUntilAdvanced(T, 0.0);
  EXPECT_GT(T.seconds(), 0.0);
  T.stop(); // freeze so the two unit readings observe the same value
  EXPECT_DOUBLE_EQ(T.milliseconds(), T.seconds() * 1000.0);
}

TEST(Timer, StopFreezesAccumulation) {
  Timer T;
  spinUntilAdvanced(T, 0.0);
  T.stop();
  EXPECT_FALSE(T.isRunning());
  double Frozen = T.seconds();
  EXPECT_GT(Frozen, 0.0);
  // A stopped timer does not advance.
  EXPECT_DOUBLE_EQ(T.seconds(), Frozen);
  // Redundant stop is a no-op.
  T.stop();
  EXPECT_DOUBLE_EQ(T.seconds(), Frozen);
}

TEST(Timer, ResumeAccumulatesAcrossSegments) {
  Timer T;
  spinUntilAdvanced(T, 0.0);
  T.stop();
  double FirstSegment = T.seconds();
  T.resume();
  EXPECT_TRUE(T.isRunning());
  // Redundant resume is a no-op (must not discard the live segment start).
  T.resume();
  spinUntilAdvanced(T, FirstSegment);
  T.stop();
  EXPECT_GT(T.seconds(), FirstSegment);
}

TEST(Timer, ResetZeroesAndRestarts) {
  Timer T;
  spinUntilAdvanced(T, 0.0);
  T.stop();
  T.reset();
  EXPECT_TRUE(T.isRunning());
  spinUntilAdvanced(T, 0.0);
  T.stop();
  // Post-reset reading reflects only the new segment, and the timer keeps
  // the source-compatible start-on-construction behavior.
  EXPECT_GT(T.seconds(), 0.0);
}

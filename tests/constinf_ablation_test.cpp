//===- tests/constinf_ablation_test.cpp - Design-decision ablations -------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Targeted tests that each Section 4.2 design decision is load-bearing, by
/// toggling the corresponding ConstInference option and watching the result
/// flip on a minimal program.
///
//===----------------------------------------------------------------------===//

#include "cfront/CParser.h"
#include "cfront/CSema.h"
#include "constinf/ConstInfer.h"

#include <gtest/gtest.h>

using namespace quals;
using namespace quals::cfront;
using namespace quals::constinf;

namespace {

struct AblRig {
  SourceManager SM;
  DiagnosticEngine Diags{SM};
  CAstContext Ast;
  CTypeContext Types;
  StringInterner Idents;
  TranslationUnit TU;
  std::unique_ptr<ConstInference> Inf;

  bool analyze(const std::string &Source,
               const ConstInference::Options &Opts) {
    if (TU.Decls.empty()) {
      if (!parseCSource(SM, "abl.c", Source, Ast, Types, Idents, Diags, TU))
        return false;
      CSema Sema(Ast, Types, Idents, Diags);
      if (!Sema.analyze(TU))
        return false;
    }
    Diags.clear();
    Inf = std::make_unique<ConstInference>(TU, Diags, Opts);
    return Inf->run();
  }

  PosClass classOf(std::string_view Fn, int ParamIndex,
                   unsigned Depth = 0) {
    for (const InterestingPos &P : Inf->positions())
      if (P.Fn->getName() == Fn && P.ParamIndex == ParamIndex &&
          P.Depth == Depth)
        return Inf->classify(P);
    ADD_FAILURE() << "position not found: " << Fn << "#" << ParamIndex;
    return PosClass::MustNonConst;
  }
};

TEST(ConstInfAblation, CastSeveringIsWhatPermitsConstRemoval) {
  // The classic "cast away const then write" program is accepted with the
  // paper's severing rule and rejected when casts keep flow.
  const char *Prog =
      "void f(const int *p) { int *q; q = (int *)p; *q = 1; }";
  {
    AblRig R;
    ConstInference::Options Opts;
    EXPECT_TRUE(R.analyze(Prog, Opts)) << R.Diags.renderAll();
  }
  {
    AblRig R;
    ConstInference::Options Opts;
    Opts.CastsSeverFlow = false;
    EXPECT_FALSE(R.analyze(Prog, Opts));
  }
}

TEST(ConstInfAblation, LibraryConservatismPinsArguments) {
  const char *Prog = "void f(int *p) { mystery(p); }";
  {
    AblRig R;
    ConstInference::Options Opts;
    ASSERT_TRUE(R.analyze(Prog, Opts)) << R.Diags.renderAll();
    EXPECT_EQ(R.classOf("f", 0), PosClass::MustNonConst);
  }
  {
    AblRig R;
    ConstInference::Options Opts;
    Opts.ConservativeLibraries = false;
    ASSERT_TRUE(R.analyze(Prog, Opts)) << R.Diags.renderAll();
    EXPECT_EQ(R.classOf("f", 0), PosClass::Either);
  }
}

TEST(ConstInfAblation, FieldSharingPropagatesAcrossInstances) {
  // A write through one instance's field must pin a pointer stored into
  // the same field via a different instance -- but only when fields share
  // qualifiers.
  const char *Prog =
      "struct st { int *p; };\n"
      "void w(struct st *s) { *(s->p) = 1; }\n"
      "void r(struct st *t, int *q) { t->p = q; }\n";
  {
    AblRig R;
    ConstInference::Options Opts;
    Opts.Polymorphic = false;
    ASSERT_TRUE(R.analyze(Prog, Opts)) << R.Diags.renderAll();
    EXPECT_EQ(R.classOf("r", 1), PosClass::MustNonConst);
  }
  {
    AblRig R;
    ConstInference::Options Opts;
    Opts.Polymorphic = false;
    Opts.StructFieldsShared = false;
    ASSERT_TRUE(R.analyze(Prog, Opts)) << R.Diags.renderAll();
    EXPECT_EQ(R.classOf("r", 1), PosClass::Either);
  }
}

TEST(ConstInfAblation, CalleesFirstOrderEnablesPolymorphism) {
  const char *Prog =
      "int *id(int *x) { return x; }\n"
      "void writer(int *p) { *id(p) = 1; }\n"
      "int reader(int *q) { return *id(q); }\n";
  {
    AblRig R;
    ConstInference::Options Opts;
    ASSERT_TRUE(R.analyze(Prog, Opts)) << R.Diags.renderAll();
    EXPECT_EQ(R.classOf("reader", 0), PosClass::Either);
  }
  {
    AblRig R;
    ConstInference::Options Opts;
    Opts.CalleesFirst = false;
    ASSERT_TRUE(R.analyze(Prog, Opts)) << R.Diags.renderAll();
    // Callers analyzed before id's scheme exists: they used the shared
    // monomorphic interface, so the write pins the reader's argument too.
    EXPECT_EQ(R.classOf("reader", 0), PosClass::MustNonConst);
  }
}

} // namespace

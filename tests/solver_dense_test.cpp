//===- tests/solver_dense_test.cpp - Dense/parallel solver determinism ----===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The determinism contract of the dense branch-free propagation core
/// (docs/SOLVER.md): solved bounds, rendered diagnostics, and --stats solver
/// counters are byte-identical between the dense and worklist layouts and
/// between -j1 and -jN shard dispatch, on cyclic, disconnected, and
/// single-SCC graphs. Also covers the scheduling details -- masked cycles
/// iterate to their fixpoint inside one shard, small systems never take the
/// dense path, incremental edits after a bulk solve stay on the worklist
/// tier -- and runs concurrent dense solves over one shared pool (the TSan
/// CI job picks this suite up by name).
///
//===----------------------------------------------------------------------===//

#include "qual/ConstraintSystem.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <thread>

using namespace quals;

namespace {

/// Deterministic 64-bit LCG (same constants as bench/solver_microbench) so
/// random topologies are reproducible across runs and job counts.
struct Lcg {
  uint64_t State;
  explicit Lcg(uint64_t Seed) : State(Seed ? Seed : 1) {}
  uint64_t next() {
    State = State * 6364136223846793005ull + 1442695040888963407ull;
    return State >> 11;
  }
  uint32_t below(uint32_t N) { return static_cast<uint32_t>(next() % N); }
};

class SolverDenseTest : public ::testing::Test {
protected:
  QualifierSet QS;
  QualifierId Const, Tainted, Nonzero;

  void SetUp() override {
    Const = QS.add("const", Polarity::Positive);
    Tainted = QS.add("tainted", Polarity::Positive);
    Nonzero = QS.add("nonzero", Polarity::Negative);
  }

  QualExpr constOf(LatticeValue V) { return QualExpr::makeConst(V); }
  QualExpr varOf(QualVarId V) { return QualExpr::makeVar(V); }
  LatticeValue just(QualifierId Q) { return QS.valueWithPresent({Q}); }

  /// Dense core on, with thresholds floored so even the small test systems
  /// take the dense path and every level actually dispatches when a pool
  /// is attached.
  SolverConfig denseConfig(unsigned Jobs = 1, ThreadPool *Pool = nullptr) {
    SolverConfig Config;
    Config.DenseSolve = true;
    Config.DenseMinNewEdges = 1;
    Config.Jobs = Jobs;
    Config.Pool = Pool;
    Config.ShardGrain = 2;
    Config.ShardMinLevelEdges = 0;
    return Config;
  }

  /// The worklist baseline with the same collapse state as the dense path
  /// (a rebuild on every solve), so representatives -- and therefore
  /// explain() chains -- are directly byte-comparable.
  SolverConfig worklistConfig() {
    SolverConfig Config;
    Config.DenseSolve = false;
    Config.CollapseMinNewEdges = 1;
    Config.CollapsePressureFactor = 0;
    return Config;
  }

  /// Random mixed graph: NumVars vars, NumEdges var->var edges (some
  /// masked), seeds, and caps that produce a deterministic violation set.
  void buildCyclic(ConstraintSystem &Sys, unsigned NumVars,
                   unsigned NumEdges, uint64_t Seed) {
    Lcg Rng(Seed);
    std::vector<QualVarId> V;
    for (unsigned I = 0; I != NumVars; ++I)
      V.push_back(Sys.freshVar("v" + std::to_string(I)));
    uint64_t TaintOnly = QS.bitFor(Tainted);
    for (unsigned I = 0; I != NumEdges; ++I) {
      QualVarId From = V[Rng.below(NumVars)];
      QualVarId To = V[Rng.below(NumVars)];
      std::string Label = "edge " + std::to_string(I);
      if (Rng.below(8) == 0)
        Sys.addLeqMasked(varOf(From), varOf(To), TaintOnly, {Label});
      else
        Sys.addLeq(varOf(From), varOf(To), {Label});
    }
    for (unsigned I = 0; I != NumVars / 10 + 1; ++I) {
      Sys.addLeq(constOf(just(Const)), varOf(V[Rng.below(NumVars)]),
                 {"const seed " + std::to_string(I)});
      Sys.addLeq(constOf(just(Tainted)), varOf(V[Rng.below(NumVars)]),
                 {"taint source " + std::to_string(I)});
    }
    for (unsigned I = 0; I != NumVars / 20 + 1; ++I)
      Sys.addLeq(varOf(V[Rng.below(NumVars)]), constOf(QS.notQual(Tainted)),
                 {"sink must be untainted #" + std::to_string(I)});
  }

  /// Many small disconnected diamonds, each with its own seed and cap.
  void buildDisconnected(ConstraintSystem &Sys, unsigned NumIslands) {
    for (unsigned I = 0; I != NumIslands; ++I) {
      QualVarId A = Sys.freshVar("a" + std::to_string(I));
      QualVarId B = Sys.freshVar("b" + std::to_string(I));
      QualVarId C = Sys.freshVar("c" + std::to_string(I));
      QualVarId D = Sys.freshVar("d" + std::to_string(I));
      Sys.addLeq(varOf(A), varOf(B), {"i" + std::to_string(I) + " a<=b"});
      Sys.addLeq(varOf(A), varOf(C), {"i" + std::to_string(I) + " a<=c"});
      Sys.addLeq(varOf(B), varOf(D), {"i" + std::to_string(I) + " b<=d"});
      Sys.addLeq(varOf(C), varOf(D), {"i" + std::to_string(I) + " c<=d"});
      Sys.addLeq(constOf(just(Tainted)), varOf(A),
                 {"i" + std::to_string(I) + " source"});
      if (I % 3 == 0)
        Sys.addLeq(varOf(D), constOf(QS.notQual(Tainted)),
                   {"i" + std::to_string(I) + " sink must be untainted"});
    }
  }

  /// One giant unmasked <=-cycle over every variable (collapses to a
  /// single representative) plus a seed and a violated cap.
  void buildSingleScc(ConstraintSystem &Sys, unsigned NumVars) {
    std::vector<QualVarId> V;
    for (unsigned I = 0; I != NumVars; ++I)
      V.push_back(Sys.freshVar("s" + std::to_string(I)));
    for (unsigned I = 0; I != NumVars; ++I)
      Sys.addLeq(varOf(V[I]), varOf(V[(I + 1) % NumVars]),
                 {"ring " + std::to_string(I)});
    Sys.addLeq(constOf(just(Tainted)), varOf(V[0]), {"ring source"});
    Sys.addLeq(varOf(V[NumVars / 2]), constOf(QS.notQual(Tainted)),
               {"ring sink must be untainted"});
  }

  /// Every byte the tools render from a solved system: one explanation per
  /// violation, in collectViolations() order.
  static std::string renderDiagnostics(ConstraintSystem &Sys) {
    std::string Out;
    for (const Violation &V : Sys.collectViolations())
      Out += Sys.explain(V);
    return Out;
  }

  /// The --stats counters that must match across layouts-with-equal-
  /// collapse-state and across job counts (SolveSeconds excluded: it is
  /// wall-clock and never byte-compared; docs/SOLVER.md).
  static void expectStatsEqual(const SolverStats &A, const SolverStats &B) {
    EXPECT_EQ(A.NumVars, B.NumVars);
    EXPECT_EQ(A.NumConstraints, B.NumConstraints);
    EXPECT_EQ(A.VarVarEdges, B.VarVarEdges);
    EXPECT_EQ(A.CompactEdges, B.CompactEdges);
    EXPECT_EQ(A.SolveCalls, B.SolveCalls);
    EXPECT_EQ(A.DensePasses, B.DensePasses);
    EXPECT_EQ(A.CollapsePasses, B.CollapsePasses);
    EXPECT_EQ(A.SccsCollapsed, B.SccsCollapsed);
    EXPECT_EQ(A.VarsCollapsed, B.VarsCollapsed);
    EXPECT_EQ(A.EdgesDeduped, B.EdgesDeduped);
    EXPECT_EQ(A.SelfEdgesDropped, B.SelfEdgesDropped);
    EXPECT_EQ(A.WorklistPushes, B.WorklistPushes);
    EXPECT_EQ(A.EdgeVisits, B.EdgeVisits);
  }

  /// Asserts bounds, diagnostics bytes, and stats counters all agree
  /// between two identically-built, solved systems.
  static void expectByteIdentical(ConstraintSystem &A, ConstraintSystem &B) {
    ASSERT_EQ(A.getNumVars(), B.getNumVars());
    for (QualVarId V = 0; V != A.getNumVars(); ++V) {
      EXPECT_EQ(A.lower(V).bits(), B.lower(V).bits()) << "var " << V;
      EXPECT_EQ(A.upper(V).bits(), B.upper(V).bits()) << "var " << V;
    }
    EXPECT_EQ(renderDiagnostics(A), renderDiagnostics(B));
    expectStatsEqual(A.getStats(), B.getStats());
  }
};

TEST_F(SolverDenseTest, DenseMatchesWorklistOnRandomGraphs) {
  for (uint64_t Seed : {7ull, 99ull, 2026ull}) {
    ConstraintSystem Dense(QS, denseConfig());
    ConstraintSystem Work(QS, worklistConfig());
    buildCyclic(Dense, 120, 480, Seed);
    buildCyclic(Work, 120, 480, Seed);
    EXPECT_EQ(Dense.solve(), Work.solve()) << "seed " << Seed;
    EXPECT_EQ(Dense.getStats().DensePasses, 1u);
    EXPECT_EQ(Work.getStats().DensePasses, 0u);
    for (QualVarId V = 0; V != Dense.getNumVars(); ++V) {
      EXPECT_EQ(Dense.lower(V).bits(), Work.lower(V).bits())
          << "seed " << Seed << " var " << V;
      EXPECT_EQ(Dense.upper(V).bits(), Work.upper(V).bits())
          << "seed " << Seed << " var " << V;
    }
    // Same collapse state (both rebuilt this solve), so the rendered
    // diagnostics must be byte-identical too, not just equivalent.
    EXPECT_EQ(renderDiagnostics(Dense), renderDiagnostics(Work))
        << "seed " << Seed;
  }
}

TEST_F(SolverDenseTest, JobsByteIdentityOnCyclicGraph) {
  ThreadPool Pool(4);
  ConstraintSystem J1(QS, denseConfig());
  ConstraintSystem JN(QS, denseConfig(4, &Pool));
  buildCyclic(J1, 200, 800, 42);
  buildCyclic(JN, 200, 800, 42);
  EXPECT_EQ(J1.solve(), JN.solve());
  EXPECT_EQ(JN.getStats().DensePasses, 1u);
  expectByteIdentical(J1, JN);
}

TEST_F(SolverDenseTest, JobsByteIdentityOnDisconnectedComponents) {
  // Hundreds of independent islands land on few levels with many
  // components each -- the shape that actually exercises chunked shard
  // dispatch (ShardGrain 2, so dozens of chunks per level).
  ThreadPool Pool(4);
  ConstraintSystem J1(QS, denseConfig());
  ConstraintSystem JN(QS, denseConfig(4, &Pool));
  buildDisconnected(J1, 300);
  buildDisconnected(JN, 300);
  EXPECT_EQ(J1.solve(), JN.solve());
  EXPECT_EQ(JN.getStats().DensePasses, 1u);
  expectByteIdentical(J1, JN);
}

TEST_F(SolverDenseTest, JobsByteIdentityOnSingleGiantScc) {
  ThreadPool Pool(4);
  ConstraintSystem J1(QS, denseConfig());
  ConstraintSystem JN(QS, denseConfig(4, &Pool));
  buildSingleScc(J1, 500);
  buildSingleScc(JN, 500);
  EXPECT_EQ(J1.solve(), JN.solve());
  expectByteIdentical(J1, JN);
  // The whole ring collapses onto one representative; the sink's taint
  // violation survives and explains identically.
  EXPECT_TRUE(J1.sameRep(0, 250));
  EXPECT_NE(renderDiagnostics(J1).find("sink must be untainted"),
            std::string::npos);
}

TEST_F(SolverDenseTest, MaskedCycleRunsToFixpointInsideOneShard) {
  // A cycle through masked edges is never collapsed (docs/SOLVER.md), so
  // it becomes one multi-node scheduling component that must iterate to
  // its local fixpoint -- at any job count.
  ThreadPool Pool(4);
  for (unsigned Jobs : {1u, 4u}) {
    ConstraintSystem Sys(QS,
                         denseConfig(Jobs, Jobs > 1 ? &Pool : nullptr));
    QualVarId A = Sys.freshVar("a"), B = Sys.freshVar("b"),
              C = Sys.freshVar("c");
    uint64_t TaintOnly = QS.bitFor(Tainted);
    Sys.addLeqMasked(varOf(A), varOf(B), TaintOnly, {"a<=b taint"});
    Sys.addLeqMasked(varOf(B), varOf(C), TaintOnly, {"b<=c taint"});
    Sys.addLeqMasked(varOf(C), varOf(A), TaintOnly, {"c<=a taint"});
    Sys.addLeq(constOf(just(Tainted)), varOf(A), {"taint a"});
    Sys.addLeq(constOf(just(Const)), varOf(B), {"const b"});
    EXPECT_TRUE(Sys.solve());
    // Taint flows all the way around the masked cycle...
    EXPECT_TRUE(Sys.lower(C).bits() & QS.bitFor(Tainted));
    EXPECT_TRUE(Sys.lower(A).bits() & QS.bitFor(Tainted));
    // ...but const does not cross the mask, and nothing collapsed.
    EXPECT_FALSE(Sys.lower(C).bits() & QS.bitFor(Const));
    EXPECT_FALSE(Sys.sameRep(A, B));
  }
}

TEST_F(SolverDenseTest, SmallAndIncrementalSolvesStayOnWorklistTier) {
  // Default config: a 200-edge system is below DenseMinNewEdges, so the
  // dense core must not fire (the pressure policy stays in charge).
  ConstraintSystem Small(QS);
  buildCyclic(Small, 50, 200, 5);
  Small.solve();
  EXPECT_EQ(Small.getStats().DensePasses, 0u);

  // A bulk ingest above the floor takes exactly one dense pass...
  ConstraintSystem Bulk(QS);
  buildCyclic(Bulk, 400, 1600, 5);
  Bulk.solve();
  EXPECT_EQ(Bulk.getStats().DensePasses, 1u);
  EXPECT_EQ(Bulk.getStats().CollapsePasses, 1u);

  // ...and a small incremental edit afterwards is not "half the system",
  // so it re-solves on the worklist tier and still matches a from-scratch
  // reference.
  QualVarId X = Bulk.freshVar("x");
  Bulk.addLeq(constOf(just(Tainted)), varOf(X), {"new source"});
  Bulk.addLeq(varOf(X), varOf(0), {"new edge"});
  Bulk.solve();
  // Stats describe one solve: the re-solve itself took no dense pass.
  EXPECT_EQ(Bulk.getStats().DensePasses, 0u);

  ConstraintSystem Ref(QS, worklistConfig());
  buildCyclic(Ref, 400, 1600, 5);
  QualVarId Y = Ref.freshVar("x");
  Ref.addLeq(constOf(just(Tainted)), varOf(Y), {"new source"});
  Ref.addLeq(varOf(Y), varOf(0), {"new edge"});
  Ref.solve();
  for (QualVarId V = 0; V != Bulk.getNumVars(); ++V) {
    EXPECT_EQ(Bulk.lower(V).bits(), Ref.lower(V).bits()) << "var " << V;
    EXPECT_EQ(Bulk.upper(V).bits(), Ref.upper(V).bits()) << "var " << V;
  }
}

TEST_F(SolverDenseTest, ExplainBytesIdenticalAcrossLayoutsAndJobs) {
  ThreadPool Pool(4);
  auto build = [this](ConstraintSystem &Sys) {
    // A taint source feeding a long chain into an untainted sink: the
    // explanation must name the chain deterministically.
    std::vector<QualVarId> V;
    for (unsigned I = 0; I != 40; ++I)
      V.push_back(Sys.freshVar("h" + std::to_string(I)));
    Sys.addLeq(constOf(just(Tainted)), varOf(V[0]), {"the source"});
    for (unsigned I = 0; I + 1 != 40; ++I)
      Sys.addLeq(varOf(V[I]), varOf(V[I + 1]),
                 {"hop " + std::to_string(I)});
    Sys.addLeq(varOf(V[39]), constOf(QS.notQual(Tainted)),
               {"sink must be untainted"});
  };
  ConstraintSystem Dense1(QS, denseConfig());
  ConstraintSystem DenseN(QS, denseConfig(4, &Pool));
  ConstraintSystem Work(QS, worklistConfig());
  build(Dense1);
  build(DenseN);
  build(Work);
  // The taint chain violates the sink cap, so all three agree: unsat.
  EXPECT_FALSE(Dense1.solve());
  EXPECT_FALSE(DenseN.solve());
  EXPECT_FALSE(Work.solve());
  std::string D1 = renderDiagnostics(Dense1);
  EXPECT_EQ(D1, renderDiagnostics(DenseN));
  EXPECT_EQ(D1, renderDiagnostics(Work));
  EXPECT_NE(D1.find("the source"), std::string::npos);
  EXPECT_NE(D1.find("hop 38"), std::string::npos);
  EXPECT_NE(D1.find("source: qualifier constant"), std::string::npos);
}

TEST_F(SolverDenseTest, ConcurrentDenseSolvesShareOnePool) {
  // Several systems solving at once, all sharding onto the same pool --
  // the TSan job runs this to prove shard dispatch, the chunked
  // parallelForEach, and the stats merge are race-free.
  ThreadPool Pool(4);
  std::vector<std::thread> Threads;
  std::atomic<unsigned> Mismatches{0};
  for (unsigned T = 0; T != 4; ++T)
    Threads.emplace_back([this, T, &Pool, &Mismatches] {
      ConstraintSystem Sys(QS, denseConfig(4, &Pool));
      ConstraintSystem Ref(QS, denseConfig());
      buildCyclic(Sys, 80, 320, 1000 + T);
      buildCyclic(Ref, 80, 320, 1000 + T);
      Sys.solve();
      Ref.solve();
      for (QualVarId V = 0; V != Sys.getNumVars(); ++V)
        if (Sys.lower(V).bits() != Ref.lower(V).bits() ||
            Sys.upper(V).bits() != Ref.upper(V).bits())
          Mismatches.fetch_add(1);
      if (Sys.getStats().EdgeVisits != Ref.getStats().EdgeVisits)
        Mismatches.fetch_add(1);
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Mismatches.load(), 0u);
}

} // namespace

//===- tests/solver_scc_test.cpp - Cycle-collapsing solver tests ----------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the solver's SCC cycle collapsing (see docs/SOLVER.md): collapsed
/// cycles share one solution, masked cycles are never collapsed, provenance
/// explanations survive collapsing, incremental solves that merge two
/// existing components stay correct, and collapsing is invisible next to the
/// pure worklist baseline on random cyclic systems.
///
//===----------------------------------------------------------------------===//

#include "qual/ConstraintSystem.h"

#include <gtest/gtest.h>

using namespace quals;

namespace {

class SolverSccTest : public ::testing::Test {
protected:
  QualifierSet QS;
  QualifierId Const, Tainted, Nonzero;

  void SetUp() override {
    Const = QS.add("const", Polarity::Positive);
    Tainted = QS.add("tainted", Polarity::Positive);
    Nonzero = QS.add("nonzero", Polarity::Negative);
  }

  /// A config that rebuilds on every solve that added var->var edges,
  /// regardless of accumulated worklist pressure, so the tests exercise the
  /// collapse path deterministically.
  static SolverConfig eagerCollapse() {
    SolverConfig Config;
    Config.CollapseCycles = true;
    Config.CollapseMinNewEdges = 1;
    Config.CollapsePressureFactor = 0;
    return Config;
  }

  QualExpr constOf(LatticeValue V) { return QualExpr::makeConst(V); }
  QualExpr varOf(QualVarId V) { return QualExpr::makeVar(V); }
  LatticeValue just(QualifierId Q) { return QS.valueWithPresent({Q}); }
};

TEST_F(SolverSccTest, CycleMembersShareOneSolution) {
  ConstraintSystem Sys(QS, eagerCollapse());
  QualVarId A = Sys.freshVar("a"), B = Sys.freshVar("b"),
            C = Sys.freshVar("c");
  Sys.addLeq(varOf(A), varOf(B), {"a<=b"});
  Sys.addLeq(varOf(B), varOf(C), {"b<=c"});
  Sys.addLeq(varOf(C), varOf(A), {"c<=a"});
  Sys.addLeq(constOf(just(Const)), varOf(A), {"seed"});
  Sys.addLeq(varOf(B), constOf(QS.notQual(Tainted)), {"cap"});
  ASSERT_TRUE(Sys.solve());
  EXPECT_TRUE(Sys.sameRep(A, B));
  EXPECT_TRUE(Sys.sameRep(B, C));
  for (QualVarId V : {A, B, C}) {
    EXPECT_EQ(Sys.lower(V), just(Const));
    EXPECT_EQ(Sys.upper(V), QS.notQual(Tainted));
    EXPECT_TRUE(Sys.mustHave(V, Const));
    EXPECT_FALSE(Sys.mayHave(V, Tainted));
  }
  SolverStats Stats = Sys.getStats();
  EXPECT_EQ(Stats.SccsCollapsed, 1u);
  EXPECT_EQ(Stats.VarsCollapsed, 2u);
}

TEST_F(SolverSccTest, DisabledConfigNeverCollapsesButAgrees) {
  SolverConfig Off;
  Off.CollapseCycles = false;
  ConstraintSystem Sys(QS, Off);
  QualVarId A = Sys.freshVar("a"), B = Sys.freshVar("b");
  Sys.addLeq(varOf(A), varOf(B), {"a<=b"});
  Sys.addLeq(varOf(B), varOf(A), {"b<=a"});
  Sys.addLeq(constOf(just(Tainted)), varOf(A), {"seed"});
  ASSERT_TRUE(Sys.solve());
  EXPECT_FALSE(Sys.sameRep(A, B));
  EXPECT_EQ(Sys.lower(A), Sys.lower(B));
  EXPECT_EQ(Sys.upper(A), Sys.upper(B));
  EXPECT_EQ(Sys.getStats().CollapsePasses, 0u);
}

TEST_F(SolverSccTest, MaskedCycleIsNotCollapsed) {
  // a <= b on all components, b <= a only on tainted: not a full cycle, so
  // the vars must stay distinct and const still flows one-way only.
  ConstraintSystem Sys(QS, eagerCollapse());
  QualVarId A = Sys.freshVar("a"), B = Sys.freshVar("b");
  Sys.addLeq(varOf(A), varOf(B), {"a<=b"});
  Sys.addLeqMasked(varOf(B), varOf(A), QS.bitFor(Tainted), {"b<=a taint"});
  Sys.addLeq(constOf(just(Const)), varOf(B), {"const b"});
  Sys.addLeq(constOf(just(Tainted)), varOf(B), {"taint b"});
  ASSERT_TRUE(Sys.solve());
  EXPECT_FALSE(Sys.sameRep(A, B));
  // const reaches only b; tainted flows back to a through the masked edge.
  EXPECT_FALSE(Sys.mustHave(A, Const));
  EXPECT_TRUE(Sys.mustHave(B, Const));
  EXPECT_TRUE(Sys.mustHave(A, Tainted));
  EXPECT_EQ(Sys.getStats().SccsCollapsed, 0u);
}

TEST_F(SolverSccTest, ExplainSurvivesCollapsing) {
  // source -> ring of 5 -> sink with an upper bound: the offending-bit
  // provenance must still walk back to "source" after the ring collapses.
  ConstraintSystem Sys(QS, eagerCollapse());
  QualVarId Src = Sys.freshVar("src");
  Sys.addLeq(constOf(just(Tainted)), varOf(Src), {"source"});
  std::vector<QualVarId> Ring;
  for (int I = 0; I != 5; ++I)
    Ring.push_back(Sys.freshVar("r" + std::to_string(I)));
  for (int I = 0; I != 5; ++I)
    Sys.addLeq(varOf(Ring[I]), varOf(Ring[(I + 1) % 5]),
               {"ring " + std::to_string(I)});
  Sys.addLeq(varOf(Src), varOf(Ring[2]), {"entry"});
  QualVarId Sink = Sys.freshVar("sink");
  Sys.addLeq(varOf(Ring[4]), varOf(Sink), {"exit"});
  Sys.addLeq(varOf(Sink), constOf(QS.notQual(Tainted)),
             {"sink must be untainted"});
  EXPECT_FALSE(Sys.solve());
  std::vector<Violation> Vs = Sys.collectViolations();
  ASSERT_EQ(Vs.size(), 1u);
  EXPECT_EQ(Vs[0].OffendingBits, QS.bitFor(Tainted));
  std::string Explanation = Sys.explain(Vs[0]);
  EXPECT_NE(Explanation.find("sink must be untainted"), std::string::npos);
  EXPECT_NE(Explanation.find("source"), std::string::npos);
  EXPECT_NE(Explanation.find("tainted"), std::string::npos);
}

TEST_F(SolverSccTest, IncrementalEdgeMergesTwoComponents) {
  // Two separately collapsed cycles; later edges connect them into one big
  // cycle. The next solve must observe the merge (directly or via another
  // rebuild) and equalize the solutions.
  ConstraintSystem Sys(QS, eagerCollapse());
  QualVarId A1 = Sys.freshVar("a1"), A2 = Sys.freshVar("a2");
  QualVarId B1 = Sys.freshVar("b1"), B2 = Sys.freshVar("b2");
  Sys.addLeq(varOf(A1), varOf(A2), {"a1<=a2"});
  Sys.addLeq(varOf(A2), varOf(A1), {"a2<=a1"});
  Sys.addLeq(varOf(B1), varOf(B2), {"b1<=b2"});
  Sys.addLeq(varOf(B2), varOf(B1), {"b2<=b1"});
  Sys.addLeq(constOf(just(Const)), varOf(A1), {"const a"});
  ASSERT_TRUE(Sys.solve());
  EXPECT_TRUE(Sys.sameRep(A1, A2));
  EXPECT_TRUE(Sys.sameRep(B1, B2));
  EXPECT_FALSE(Sys.sameRep(A1, B1));
  EXPECT_FALSE(Sys.mustHave(B1, Const));

  Sys.addLeq(varOf(A2), varOf(B1), {"a->b"});
  Sys.addLeq(varOf(B2), varOf(A1), {"b->a"});
  Sys.addLeq(constOf(just(Tainted)), varOf(B2), {"taint b"});
  ASSERT_TRUE(Sys.solve());
  EXPECT_TRUE(Sys.sameRep(A1, B1));
  for (QualVarId V : {A1, A2, B1, B2}) {
    EXPECT_TRUE(Sys.mustHave(V, Const));
    EXPECT_TRUE(Sys.mustHave(V, Tainted));
  }

  // A bound on one former component constrains all of them: nonzero is a
  // negative qualifier, so forcing its bit from below forbids it everywhere
  // on the merged cycle.
  Sys.addLeq(constOf(QS.withoutQual(QS.bottom(), Nonzero)), varOf(B1),
             {"not nonzero"});
  ASSERT_TRUE(Sys.solve());
  EXPECT_FALSE(Sys.mayHave(A1, Nonzero));
}

TEST_F(SolverSccTest, PressurePolicyTiersUpOnlyUnderRepeatedTraffic) {
  // Default thresholds: one solve over a 200-var cycle costs ~200 edge
  // visits, below the 2x-edge-count pressure bar, so the solver stays on
  // the plain worklist tier -- no rebuild, no merging, values still exact.
  ConstraintSystem Sys(QS); // default config, pressure policy active
  std::vector<QualVarId> Chain;
  for (int I = 0; I != 200; ++I)
    Chain.push_back(Sys.freshVar("c" + std::to_string(I)));
  for (int I = 0; I + 1 != 200; ++I)
    Sys.addLeq(varOf(Chain[I]), varOf(Chain[I + 1]), {"chain"});
  Sys.addLeq(varOf(Chain[199]), varOf(Chain[0]), {"close"});
  Sys.addLeq(constOf(just(Const)), varOf(Chain[17]), {"seed"});
  ASSERT_TRUE(Sys.solve());
  EXPECT_EQ(Sys.getStats().CollapsePasses, 0u);
  EXPECT_FALSE(Sys.sameRep(Chain[0], Chain[199]));
  EXPECT_TRUE(Sys.mustHave(Chain[0], Const));
  EXPECT_TRUE(Sys.mustHave(Chain[137], Const));

  // Small incremental batch: a fresh var hanging off the cycle rides the
  // pending edge lists.
  QualVarId Tail = Sys.freshVar("tail");
  Sys.addLeq(varOf(Chain[42]), varOf(Tail), {"tail edge"});
  ASSERT_TRUE(Sys.solve());
  EXPECT_TRUE(Sys.mustHave(Tail, Const));

  // Each new fact re-walks the whole cycle. After a few laps the
  // accumulated visits cross the pressure threshold, the solver tiers up
  // mid-drain, and the cycle collapses to one representative. Stats are
  // per-solve, so the rebuild counter is summed across solves.
  unsigned TotalCollapsePasses = 0;
  Sys.addLeq(constOf(just(Tainted)), varOf(Tail), {"late taint"});
  Sys.addLeq(varOf(Tail), varOf(Chain[0]), {"tail back"});
  ASSERT_TRUE(Sys.solve());
  TotalCollapsePasses += Sys.getStats().CollapsePasses;
  EXPECT_TRUE(Sys.mustHave(Chain[137], Tainted));
  Sys.addLeq(constOf(QS.withoutQual(QS.bottom(), Nonzero)), varOf(Tail),
             {"not nonzero"});
  ASSERT_TRUE(Sys.solve());
  TotalCollapsePasses += Sys.getStats().CollapsePasses;
  EXPECT_FALSE(Sys.mayHave(Chain[55], Nonzero));
  EXPECT_GE(TotalCollapsePasses, 1u);
  EXPECT_TRUE(Sys.sameRep(Chain[0], Chain[199]));
}

TEST_F(SolverSccTest, StatsResetPerSolveAndExplicitly) {
  // Stats describe the most recent solve(): a second incremental solve must
  // not report the first solve's propagation work, while snapshot fields
  // (vars, constraints, compact edges) keep describing the current system.
  ConstraintSystem Sys(QS, eagerCollapse());
  QualVarId A = Sys.freshVar("a"), B = Sys.freshVar("b");
  Sys.addLeq(varOf(A), varOf(B), {"a<=b"});
  Sys.addLeq(constOf(just(Const)), varOf(A), {"seed"});
  ASSERT_TRUE(Sys.solve());
  SolverStats First = Sys.getStats();
  EXPECT_EQ(First.SolveCalls, 1u);
  EXPECT_GE(First.EdgeVisits, 1u);

  // No new constraints: the second solve has nothing to propagate and its
  // stats must say so instead of echoing the first solve's counters.
  ASSERT_TRUE(Sys.solve());
  SolverStats Second = Sys.getStats();
  EXPECT_EQ(Second.SolveCalls, 1u);
  EXPECT_EQ(Second.EdgeVisits, 0u);
  EXPECT_EQ(Second.WorklistPushes, 0u);
  EXPECT_EQ(Second.NumVars, 2u);
  EXPECT_EQ(Second.NumConstraints, 2u);
  EXPECT_EQ(Second.VarVarEdges, 1u);
  // The compact graph built by the first solve is still the current state.
  EXPECT_EQ(Second.CompactEdges, 1u);

  // Explicit reset() zeroes a snapshot wholesale.
  First.reset();
  EXPECT_EQ(First.SolveCalls, 0u);
  EXPECT_EQ(First.EdgeVisits, 0u);
  EXPECT_EQ(First.NumVars, 0u);
  EXPECT_EQ(First.SolveSeconds, 0.0);
}

TEST_F(SolverSccTest, PerSolveStatsKeepPressureAccounting) {
  // The rebuild-pressure policy compares lifetime edge visits against the
  // threshold; the per-solve stats reset must not starve it. Re-run the
  // pressure scenario and check the collapse still eventually fires.
  ConstraintSystem Sys(QS); // default config
  std::vector<QualVarId> Ring;
  for (int I = 0; I != 100; ++I)
    Ring.push_back(Sys.freshVar("r"));
  for (int I = 0; I != 100; ++I)
    Sys.addLeq(varOf(Ring[I]), varOf(Ring[(I + 1) % 100]), {"ring"});
  unsigned TotalCollapsePasses = 0;
  // Feed one new bound per solve; each walks the full ring (two forward
  // lower-bound laps, one backward upper-bound lap), so the lifetime visit
  // count crosses the pressure threshold (2 visits per edge) mid-drain of
  // the third solve even though each solve's own reported EdgeVisits is
  // only one lap.
  Sys.addLeq(constOf(just(Const)), varOf(Ring[0]), {"seed"});
  ASSERT_TRUE(Sys.solve());
  TotalCollapsePasses += Sys.getStats().CollapsePasses;
  Sys.addLeq(constOf(just(Tainted)), varOf(Ring[1]), {"seed"});
  ASSERT_TRUE(Sys.solve());
  TotalCollapsePasses += Sys.getStats().CollapsePasses;
  Sys.addLeq(varOf(Ring[50]), constOf(QS.notQual(Nonzero)), {"cap"});
  ASSERT_TRUE(Sys.solve());
  TotalCollapsePasses += Sys.getStats().CollapsePasses;
  EXPECT_GE(TotalCollapsePasses, 1u);
  EXPECT_TRUE(Sys.sameRep(Ring[0], Ring[99]));
}

TEST_F(SolverSccTest, RandomCyclicSystemMatchesWorklistBaseline) {
  // Differential test: a random cyclic system solved with eager collapsing
  // must agree variable-by-variable with the collapse-off baseline.
  struct Lcg {
    uint64_t State = 0x9E3779B97F4A7C15ULL;
    uint64_t next() {
      State ^= State << 13;
      State ^= State >> 7;
      State ^= State << 17;
      return State;
    }
    unsigned below(unsigned N) { return next() % N; }
  };

  SolverConfig Off;
  Off.CollapseCycles = false;
  ConstraintSystem On(QS, eagerCollapse());
  ConstraintSystem Base(QS, Off);
  const unsigned N = 300;
  Lcg R;
  for (unsigned I = 0; I != N; ++I) {
    On.freshVar("v");
    Base.freshVar("v");
  }
  auto addBoth = [&](QualExpr L, QualExpr Rhs) {
    On.addLeq(L, Rhs, {"e"});
    Base.addLeq(L, Rhs, {"e"});
  };
  for (unsigned I = 0; I != 4 * N; ++I)
    addBoth(QualExpr::makeVar(R.below(N)), QualExpr::makeVar(R.below(N)));
  for (unsigned I = 0; I != N / 10; ++I)
    addBoth(constOf(LatticeValue(R.below(8))), QualExpr::makeVar(R.below(N)));
  for (unsigned I = 0; I != N / 10; ++I)
    addBoth(QualExpr::makeVar(R.below(N)),
            constOf(LatticeValue(QS.usedBits() & ~(uint64_t(1) << R.below(3)))));
  bool OkOn = On.solve();
  bool OkBase = Base.solve();
  EXPECT_EQ(OkOn, OkBase);
  for (unsigned V = 0; V != N; ++V) {
    EXPECT_EQ(On.lower(V).bits(), Base.lower(V).bits()) << "var " << V;
    EXPECT_EQ(On.upper(V).bits(), Base.upper(V).bits()) << "var " << V;
  }
  EXPECT_GE(On.getStats().SccsCollapsed, 1u);
  // Violations (if any) must agree on the offending constraint set size.
  EXPECT_EQ(On.collectViolations().size(), Base.collectViolations().size());
}

TEST_F(SolverSccTest, StatsCountDedupAndSelfEdges) {
  ConstraintSystem Sys(QS, eagerCollapse());
  QualVarId A = Sys.freshVar("a"), B = Sys.freshVar("b");
  for (int I = 0; I != 4; ++I)
    Sys.addLeq(varOf(A), varOf(B), {"dup"});
  Sys.addLeq(varOf(B), varOf(A), {"back"});
  Sys.addLeq(constOf(just(Const)), varOf(A), {"seed"});
  ASSERT_TRUE(Sys.solve());
  SolverStats Stats = Sys.getStats();
  // The cycle collapses, so all five var->var edges become intra-component.
  EXPECT_EQ(Stats.SccsCollapsed, 1u);
  EXPECT_EQ(Stats.VarVarEdges, 5u);
  EXPECT_EQ(Stats.CompactEdges, 0u);
  EXPECT_EQ(Stats.SelfEdgesDropped + Stats.EdgesDeduped, 5u);
  EXPECT_EQ(Stats.SolveCalls, 1u);

  // A duplicated chain off the collapsed rep dedups in the next rebuild.
  QualVarId C = Sys.freshVar("c");
  for (int I = 0; I != 3; ++I)
    Sys.addLeq(varOf(B), varOf(C), {"dup out"});
  ASSERT_TRUE(Sys.solve());
  Stats = Sys.getStats();
  EXPECT_TRUE(Sys.mustHave(C, Const));
  EXPECT_EQ(Stats.CompactEdges, 1u);
  EXPECT_GE(Stats.EdgesDeduped, 2u);
}

} // namespace

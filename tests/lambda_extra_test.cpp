//===- tests/lambda_extra_test.cpp - Deeper lambda-language coverage ------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Second-round coverage: annotation/assertion algebra, polymorphism corner
/// cases (nested lets, shadowing, higher-order schemes), evaluator store
/// behaviour, and parameterized sweeps over the qualifier lattice.
///
//===----------------------------------------------------------------------===//

#include "LambdaTestUtil.h"

#include <gtest/gtest.h>

#include <cctype>

using namespace quals;
using namespace quals::lambda;

namespace {

//===----------------------------------------------------------------------===//
// Annotation / assertion algebra
//===----------------------------------------------------------------------===//

/// Sweep: annotating with L then asserting bound B must be accepted iff
/// L <= B in the lattice.
struct AnnotAssertCase {
  const char *Annot;
  const char *Assert;
  bool Accepted;
};

class AnnotAssertSweep : public ::testing::TestWithParam<AnnotAssertCase> {};

TEST_P(AnnotAssertSweep, MatchesLatticeOrder) {
  const AnnotAssertCase &C = GetParam();
  Rig R;
  std::string Src = std::string("({") + C.Annot + "} 1) |{" + C.Assert +
                    "}";
  CheckResult Res = R.check(Src);
  ASSERT_TRUE(Res.StdTypeOk) << Src;
  EXPECT_EQ(Res.QualOk, C.Accepted) << Src;

  // The runtime agrees (Figure 5's side conditions mirror the rules).
  Rig R2;
  EvalResult Run = R2.run(Src);
  EXPECT_EQ(Run.Outcome == EvalOutcome::Value, C.Accepted) << Src;
}

INSTANTIATE_TEST_SUITE_P(
    Lattice, AnnotAssertSweep,
    ::testing::Values(
        AnnotAssertCase{"", "", true},              // bottom <= bottom
        AnnotAssertCase{"", "const", true},         // bottom <= const
        AnnotAssertCase{"const", "const", true},
        AnnotAssertCase{"const", "", false},        // const !<= bottom
        AnnotAssertCase{"const", "~const", false},  // const !<= :const
        AnnotAssertCase{"dynamic", "~const", true}, // dynamic <= :const
        AnnotAssertCase{"const dynamic", "const", false},
        AnnotAssertCase{"const dynamic", "~nonzero", true},
        AnnotAssertCase{"nonzero", "", true},       // {nonzero} is bottom
        AnnotAssertCase{"~nonzero", "~nonzero", true},
        AnnotAssertCase{"~nonzero", "nonzero", false}),
    [](const ::testing::TestParamInfo<AnnotAssertCase> &Info) {
      std::string Name = std::string(Info.param.Annot) + "_below_" +
                         Info.param.Assert +
                         (Info.param.Accepted ? "_yes" : "_no");
      for (char &C : Name)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

TEST(LambdaExtra, AnnotationChainsMustClimb) {
  Rig R;
  EXPECT_TRUE(R.check("{const dynamic} {const} {} 1").QualOk);
  Rig R2;
  EXPECT_FALSE(R2.check("{const} {const dynamic} 1").QualOk);
}

TEST(LambdaExtra, AssertionDoesNotChangeTheType) {
  // e|l keeps Q tau: a later assertion still sees the original qualifier.
  Rig R;
  EXPECT_FALSE(R.check("(({const} 1) |{const}) |{~const}").QualOk);
}

TEST(LambdaExtra, AnnotationReplacesTheQualifier) {
  // {l} e retypes at exactly l, so a const-excluding assertion on a
  // re-annotated value checks the *new* qualifier.
  Rig R;
  EXPECT_TRUE(
      R.check("(({const dynamic} ({const} 1)) |{const dynamic})").QualOk);
}

//===----------------------------------------------------------------------===//
// Polymorphism corners
//===----------------------------------------------------------------------===//

TEST(LambdaExtra, NestedLetsGeneralizeIndependently) {
  Rig R;
  CheckResult C = R.check(
      "let outer = fn x. x in"
      " let inner = fn y. outer y in"
      "  let a = inner ({const} 1) in"
      "   (inner 2) |{~const}"
      "  ni ni ni",
      /*Polymorphic=*/true);
  EXPECT_TRUE(C.QualOk) << R.Diags.renderAll();
}

TEST(LambdaExtra, ShadowedNamesResolveInnermost) {
  Rig R;
  CheckResult C = R.check(
      "let f = fn x. {const} 1 in"
      " let f = fn x. x in"
      "  (f 2) |{~const}"
      " ni ni",
      true);
  // The inner f is the identity; 2 is unannotated, so the assert passes.
  EXPECT_TRUE(C.QualOk) << R.Diags.renderAll();
  Rig R2;
  CheckResult C2 = R2.check(
      "let f = fn x. {const} 1 in"
      "  (f 2) |{~const}"
      " ni",
      true);
  EXPECT_FALSE(C2.QualOk);
}

TEST(LambdaExtra, PolymorphicConstFunctionStaysConstEverywhere) {
  // A function that *always* returns const data: every use site sees it.
  Rig R;
  CheckResult C = R.check(
      "let mk = fn x. {const} 5 in"
      " let a = (mk 1) |{const} in"
      "  (mk 2) |{~const}"
      " ni ni",
      true);
  EXPECT_FALSE(C.QualOk);
}

TEST(LambdaExtra, HigherOrderSchemePassing) {
  // apply = fn f. fn x. f x used with both a const-producer and identity.
  Rig R;
  CheckResult C = R.check(
      "let apply = fn f. fn x. f x in"
      " let a = ((apply (fn u. {const} u)) 1) |{const} in"
      "  ((apply (fn v. v)) 2) |{~const}"
      " ni ni",
      true);
  EXPECT_TRUE(C.QualOk) << R.Diags.renderAll();
}

TEST(LambdaExtra, MonoVsPolySweep) {
  // A family of programs where use site K writes and the others read; poly
  // accepts all, mono rejects as soon as there are both kinds of use.
  for (int Reads = 1; Reads <= 3; ++Reads) {
    std::string Src = "let id = fn x. x in let w = id (ref 1) in ";
    for (int I = 0; I != Reads; ++I)
      Src += "let r" + std::to_string(I) + " = id ({const} ref 1) in ";
    Src += "w := 2";
    for (int I = 0; I != Reads + 2; ++I)
      Src += " ni";
    Rig Poly;
    EXPECT_TRUE(Poly.check(Src, true).QualOk) << Src;
    Rig Mono;
    EXPECT_FALSE(Mono.check(Src, false).QualOk) << Src;
  }
}

//===----------------------------------------------------------------------===//
// Evaluator corners
//===----------------------------------------------------------------------===//

TEST(LambdaExtra, StoreCellsAreIndependent) {
  Rig R;
  EvalResult E = R.run(
      "let a = ref 1 in let b = ref 2 in"
      " let s = a := 10 in (!a) ni ni ni");
  ASSERT_EQ(E.Outcome, EvalOutcome::Value);
  EXPECT_EQ(cast<IntLitExpr>(Evaluator::bareValue(E.Result))->getValue(),
            10);
}

TEST(LambdaExtra, RefOfRefWorks) {
  Rig R;
  EvalResult E = R.run(
      "let rr = ref (ref 5) in !(!rr) ni");
  ASSERT_EQ(E.Outcome, EvalOutcome::Value);
  EXPECT_EQ(cast<IntLitExpr>(Evaluator::bareValue(E.Result))->getValue(),
            5);
}

TEST(LambdaExtra, ClosuresCaptureValuesNotCells) {
  // Substitution semantics: x is replaced by the *value* at binding time.
  Rig R;
  EvalResult E = R.run(
      "let x = 1 in"
      " let f = fn y. x in"
      "  let x = 2 in"
      "   f 0"
      "  ni ni ni");
  ASSERT_EQ(E.Outcome, EvalOutcome::Value);
  EXPECT_EQ(cast<IntLitExpr>(Evaluator::bareValue(E.Result))->getValue(),
            1);
}

TEST(LambdaExtra, QualifierSurvivesThroughStore) {
  Rig R;
  EvalResult E = R.run(
      "let c = ref ({const nonzero} 9) in (!c)|{const nonzero} ni");
  ASSERT_EQ(E.Outcome, EvalOutcome::Value);
  Evaluator Ev(R.Ast, R.QS);
  EXPECT_TRUE(R.QS.contains(Ev.valueQual(E.Result), R.Const));
}

TEST(LambdaExtra, AnnotatedFunctionValueChecksAtCallTime) {
  // The function value carries {const}; applying it still works (the
  // qualifier is on the function, not the result).
  Rig R;
  EvalResult E = R.run("({const} (fn x. x)) 3");
  ASSERT_EQ(E.Outcome, EvalOutcome::Value);
  EXPECT_EQ(cast<IntLitExpr>(Evaluator::bareValue(E.Result))->getValue(),
            3);
}

TEST(LambdaExtra, DeepLetNestingEvaluates) {
  std::string Src;
  for (int I = 0; I != 200; ++I)
    Src += "let x" + std::to_string(I) + " = " + std::to_string(I) + " in ";
  Src += "x199";
  for (int I = 0; I != 200; ++I)
    Src += " ni";
  Rig R;
  EvalResult E = R.run(Src);
  ASSERT_EQ(E.Outcome, EvalOutcome::Value);
  EXPECT_EQ(cast<IntLitExpr>(Evaluator::bareValue(E.Result))->getValue(),
            199);
}

TEST(LambdaExtra, ChurchStyleArithmeticRuns) {
  // Higher-order stress: double application without recursion.
  Rig R;
  EvalResult E = R.run(
      "let twice = fn f. fn x. f (f x) in"
      " let inc = fn r. (let s = r := 1 in r ni) in"
      "  let cell = ref 0 in"
      "   let u = (twice inc) cell in !cell"
      "  ni ni ni ni");
  ASSERT_EQ(E.Outcome, EvalOutcome::Value);
  EXPECT_EQ(cast<IntLitExpr>(Evaluator::bareValue(E.Result))->getValue(),
            1);
}

} // namespace

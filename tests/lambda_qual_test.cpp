//===- tests/lambda_qual_test.cpp - Qualified type inference tests --------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests Figure 4's qualified type system in inference form, the const rule
/// (Assign'), the paper's worked examples (the unsound nonzero-smuggling
/// program of Section 2.4 and the polymorphic id of Section 3.2), and the
/// interaction of annotations, assertions, and subsumption.
///
//===----------------------------------------------------------------------===//

#include "LambdaTestUtil.h"

#include <gtest/gtest.h>

using namespace quals;
using namespace quals::lambda;

namespace {

TEST(QualInfer, PlainProgramsAreAccepted) {
  Rig R;
  CheckResult C = R.check("let x = ref 1 in !x ni");
  EXPECT_TRUE(C.StdTypeOk);
  EXPECT_TRUE(C.QualOk) << R.Diags.renderAll();
}

TEST(QualInfer, AssertionSatisfiedByAnnotation) {
  Rig R;
  CheckResult C = R.check("({const} 1) |{const}");
  EXPECT_TRUE(C.QualOk);
}

TEST(QualInfer, AssertionFailsWithoutAnnotation) {
  // e|l demands Q <= l; an annotation {const} exceeds the bottom bound
  // {nonzero-absent...}: assert the value is exactly bottom.
  Rig R;
  CheckResult C = R.check("({const} 1) |{~const}");
  EXPECT_TRUE(C.StdTypeOk);
  EXPECT_FALSE(C.QualOk);
  ASSERT_FALSE(C.Violations.empty());
  std::string Why = R.Sys.explain(C.Violations[0]);
  EXPECT_NE(Why.find("const"), std::string::npos);
}

TEST(QualInfer, AnnotationIsMonotonic) {
  // {~const}... annotation must *raise* the qualifier; annotating a const
  // value with a smaller element is rejected (rule Annot: Q <= l).
  Rig R;
  CheckResult C = R.check("{nonzero} ({const} 1)");
  EXPECT_TRUE(C.StdTypeOk);
  EXPECT_FALSE(C.QualOk);
}

TEST(QualInfer, AnnotationStacksMonotonically) {
  Rig R;
  CheckResult C = R.check("{const nonzero} ({nonzero} 1)");
  EXPECT_TRUE(C.QualOk);
}

TEST(QualInfer, AssignmentToConstRefRejected) {
  // (Assign'): the left-hand side of := must not be const.
  Rig R;
  CheckResult C = R.check("let x = {const} ref 1 in x := 2 ni");
  EXPECT_TRUE(C.StdTypeOk);
  EXPECT_FALSE(C.QualOk);
  ASSERT_FALSE(C.Violations.empty());
  EXPECT_NE(R.Sys.explain(C.Violations[0]).find("must not be 'const'"),
            std::string::npos);
}

TEST(QualInfer, AssignmentToPlainRefAccepted) {
  Rig R;
  CheckResult C = R.check("let x = ref 1 in x := 2 ni");
  EXPECT_TRUE(C.QualOk);
}

TEST(QualInfer, ConstContentsDoNotBlockAssignment) {
  // const on the *contents* does not make the ref itself const.
  Rig R;
  CheckResult C = R.check("let x = ref {const} 1 in x := {const} 2 ni");
  EXPECT_TRUE(C.QualOk) << R.Diags.renderAll();
}

TEST(QualInfer, PaperSection24NonzeroSmugglingRejected) {
  // The paper's unsoundness example (Section 2.4):
  //   let x = ref(nonzero 37) in let y = x in
  //   y := 0; (!x)|nonzero
  // With the sound (SubRef) rule the alias y shares x's contents qualifier,
  // so storing a plain 0 through y conflicts with the nonzero assertion.
  // We model the sequencing with a let of unit.
  Rig R;
  CheckResult C = R.check(
      "let x = ref {nonzero} 37 in"
      " let y = x in"
      "  let s = y := ({~nonzero} 0) in"
      "   (!x)|{nonzero}"
      "  ni ni ni");
  EXPECT_TRUE(C.StdTypeOk);
  EXPECT_FALSE(C.QualOk) << "unsound ref subtyping: the alias leaked";
}

TEST(QualInfer, NonAliasedUpdateStillAllowed) {
  // Writing a nonzero value through the alias is fine.
  Rig R;
  CheckResult C = R.check(
      "let x = ref {nonzero} 37 in"
      " let y = x in"
      "  let s = y := ({nonzero} 12) in"
      "   (!x)|{nonzero}"
      "  ni ni ni");
  EXPECT_TRUE(C.QualOk) << R.Diags.renderAll();
}

TEST(QualInfer, PaperSection32PolymorphicId) {
  // let id = fn x. x in let y = id (ref 1) in let z = id ({const} ref 1)
  // Poly: y's ref stays assignable even though z's is const.
  Rig R;
  CheckResult C = R.check(
      "let id = fn x. x in"
      " let y = id (ref 1) in"
      "  let z = id ({const} ref 1) in"
      "   y := 2"
      "  ni ni ni",
      /*Polymorphic=*/true);
  EXPECT_TRUE(C.QualOk) << R.Diags.renderAll();
}

TEST(QualInfer, MonomorphicIdConflates) {
  // The same program monomorphically: z's const flows back through id's
  // single type into y, and the assignment becomes illegal.
  Rig R;
  CheckResult C = R.check(
      "let id = fn x. x in"
      " let y = id (ref 1) in"
      "  let z = id ({const} ref 1) in"
      "   y := 2"
      "  ni ni ni",
      /*Polymorphic=*/false);
  EXPECT_TRUE(C.StdTypeOk);
  EXPECT_FALSE(C.QualOk);
}

TEST(QualInfer, ValueRestrictionKeepsRefsMonomorphic) {
  // let r = ref (fn x. x) -- not a syntactic value, so no generalization:
  // one cell cannot be both const-containing and not.
  Rig R;
  CheckResult C = R.check(
      "let r = ref 1 in"
      " let a = ({const} r) in"
      "  r := 5"
      " ni ni",
      /*Polymorphic=*/true);
  // Annotating r's *own* qualifier const and then assigning through r's
  // original name is fine (the annotation makes a const view of the same
  // ref; the original stays non-const)... but the original variable is
  // unchanged, so this program is accepted:
  EXPECT_TRUE(C.QualOk);
  // The genuinely monomorphic case: storing through an aliased view.
  Rig R2;
  CheckResult C2 = R2.check(
      "let r = ref 1 in"
      " let a = {const} r in"
      "  a := 5"
      " ni ni",
      /*Polymorphic=*/true);
  EXPECT_FALSE(C2.QualOk);
}

TEST(QualInfer, SubsumptionAllowsNonConstWhereConstExpected) {
  // A function expecting a const int accepts a plain int (int <= const int).
  Rig R;
  CheckResult C = R.check("(fn x. (x |{const nonzero})) ({const} 1)");
  EXPECT_TRUE(C.QualOk) << R.Diags.renderAll();
  Rig R2;
  CheckResult C2 = R2.check("(fn x. (x |{const nonzero})) 1");
  // Plain 1's qualifier variable is unconstrained from below, so it can sit
  // below the const bound: accepted.
  EXPECT_TRUE(C2.QualOk);
}

TEST(QualInfer, IfJoinsBranchQualifiers) {
  // One branch const, the other not: the result may be const, so asserting
  // ~const must fail (the const branch flows into the join).
  Rig R;
  CheckResult C =
      R.check("(if 1 then {const} 2 else 3 fi) |{~const}");
  EXPECT_FALSE(C.QualOk);
  Rig R2;
  CheckResult C2 = R2.check("(if 1 then {const} 2 else 3 fi) |{const}");
  EXPECT_TRUE(C2.QualOk);
}

TEST(QualInfer, FunctionArgumentFlowsContravariantly) {
  // f expects a ref and assigns through it; passing a const ref must fail.
  Rig R;
  CheckResult C = R.check(
      "let f = fn r. r := 1 in f ({const} ref 0) ni");
  EXPECT_TRUE(C.StdTypeOk);
  EXPECT_FALSE(C.QualOk);
  Rig R2;
  CheckResult C2 = R2.check("let f = fn r. r := 1 in f (ref 0) ni");
  EXPECT_TRUE(C2.QualOk);
}

TEST(QualInfer, HigherOrderQualifiersFlowThroughFunctions) {
  // Returning the parameter propagates its qualifier to the caller.
  Rig R;
  CheckResult C = R.check(
      "let first = fn a. fn b. a in"
      " ((first ({const} 1)) 2) |{~const}"
      " ni");
  EXPECT_FALSE(C.QualOk);
}

TEST(QualInfer, LetSchemeIsRecordedAndPolymorphic) {
  Rig R;
  const Expr *E = R.parse("let id = fn x. x in id 1 ni");
  ASSERT_NE(E, nullptr);
  StdTypeChecker Checker(R.STys, R.Diags);
  ASSERT_NE(Checker.check(E), nullptr);
  QualInferOptions Options;
  Options.Polymorphic = true;
  Options.ConstQual = R.Const;
  QualInferencer Inf(R.QS, R.Sys, R.Factory, R.Ctors, R.Diags, Options);
  QualType T = Inf.infer(E, Checker);
  ASSERT_FALSE(T.isNull());
  const QualScheme *S = Inf.getLetScheme(E);
  ASSERT_NE(S, nullptr);
  EXPECT_TRUE(S->isPolymorphic());
  EXPECT_GE(S->getNumBoundVars(), 2u); // param + fn quals at least
}

TEST(QualInfer, ObservationOneEmbedding) {
  // If the standard system types strip(e), the qualified system types the
  // bottom-annotated version (here: the raw program with no annotations).
  Rig R;
  CheckResult C = R.check("let f = fn x. (fn y. y) x in f (ref (ref 1)) ni");
  EXPECT_TRUE(C.StdTypeOk);
  EXPECT_TRUE(C.QualOk);
}

TEST(QualInfer, DeepRefNesting) {
  Rig R;
  CheckResult C = R.check(
      "let a = ref (ref ({const} 1)) in ((!(!a)) |{const}) ni");
  EXPECT_TRUE(C.QualOk) << R.Diags.renderAll();
}

TEST(QualInfer, QualifierErrorExplanationsNameTheFlow) {
  Rig R;
  CheckResult C = R.check("let x = {const} ref 1 in x := 2 ni");
  ASSERT_FALSE(C.Violations.empty());
  std::string Why = R.Sys.explain(C.Violations[0]);
  // The chain should mention both the assignment bound and the const source.
  EXPECT_NE(Why.find("assignment left-hand side"), std::string::npos);
  EXPECT_NE(Why.find("source: qualifier constant 'const"),
            std::string::npos);
}

} // namespace

//===- tests/observability_test.cpp - Trace + metrics unit tests ----------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
//
// Covers the observability substrate: the process-wide Chrome-trace recorder
// (support/Trace.h), the metrics registry (support/Metrics.h), and the
// PhaseScope glue that every pipeline layer uses.
//
//===----------------------------------------------------------------------===//

#include "support/Allocator.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

using namespace quals;

namespace {

/// Both the tracer and the collection flag are process-wide; every test
/// starts from the all-off, no-events state and restores it afterward.
class ObservabilityTest : public ::testing::Test {
protected:
  void SetUp() override {
    Tracer::instance().setEnabled(false);
    Tracer::instance().clear();
    MetricsRegistry::setCollecting(false);
  }
  void TearDown() override {
    Tracer::instance().setEnabled(false);
    Tracer::instance().clear();
    MetricsRegistry::setCollecting(false);
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Tracer
//===----------------------------------------------------------------------===//

TEST_F(ObservabilityTest, DisabledTracerRecordsNothing) {
  ASSERT_FALSE(Tracer::isEnabled());
  {
    TraceScope Scope("ghost", "test");
    Scope.setArgs("\"x\":1");
    traceInstant("ghost.instant", "test");
  }
  EXPECT_EQ(Tracer::instance().eventCount(), 0u);
}

TEST_F(ObservabilityTest, EnabledScopeRecordsCompleteSpan) {
  Tracer::instance().setEnabled(true);
  {
    TraceScope Scope("unit.span", "test");
    Scope.setArgs("\"tokens\":42");
  }
  auto Events = Tracer::instance().snapshot();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_EQ(Events[0].Name, "unit.span");
  EXPECT_EQ(Events[0].Category, "test");
  EXPECT_EQ(Events[0].Phase, 'X');
  EXPECT_EQ(Events[0].Args, "\"tokens\":42");
  EXPECT_EQ(Events[0].Tid, 0u);
}

TEST_F(ObservabilityTest, InstantEventsRecordWithZeroDuration) {
  Tracer::instance().setEnabled(true);
  traceInstant("unit.instant", "test", "\"n\":7");
  auto Events = Tracer::instance().snapshot();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_EQ(Events[0].Phase, 'i');
  EXPECT_EQ(Events[0].DurUs, 0u);
  EXPECT_EQ(Events[0].Args, "\"n\":7");
}

TEST_F(ObservabilityTest, ScopeEnabledStateIsLatchedAtConstruction) {
  // A scope opened while disabled stays inert even if tracing turns on
  // before it closes; a half-measured span would have a bogus start time.
  TraceScope Scope("latched", "test");
  Tracer::instance().setEnabled(true);
  { TraceScope Inner("live", "test"); }
  EXPECT_EQ(Tracer::instance().eventCount(), 1u);
}

TEST_F(ObservabilityTest, NestedSpansSerializeParentFirst) {
  Tracer::instance().setEnabled(true);
  {
    TraceScope Outer("outer", "test");
    TraceScope Inner("inner", "test");
  }
  // Destruction order records inner before outer...
  auto Events = Tracer::instance().snapshot();
  ASSERT_EQ(Events.size(), 2u);
  EXPECT_EQ(Events[0].Name, "inner");
  // ...but serialization sorts by start time (ties broken longest-first)
  // so viewers nest children under parents.
  std::string Json = Tracer::instance().toChromeJson();
  size_t OuterPos = Json.find("\"outer\"");
  size_t InnerPos = Json.find("\"inner\"");
  ASSERT_NE(OuterPos, std::string::npos);
  ASSERT_NE(InnerPos, std::string::npos);
  EXPECT_LT(OuterPos, InnerPos);
}

TEST_F(ObservabilityTest, ChromeJsonHasRequiredShape) {
  Tracer::instance().setEnabled(true);
  { TraceScope Scope("shape", "test"); }
  traceInstant("shape.marker", "test");
  std::string Json = Tracer::instance().toChromeJson();
  EXPECT_NE(Json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(Json.find("\"pid\":1"), std::string::npos);
  // Instants carry the scope hint Perfetto expects.
  EXPECT_NE(Json.find("\"s\":\"t\""), std::string::npos);
}

TEST_F(ObservabilityTest, ClearDropsEventsButKeepsRecording) {
  Tracer::instance().setEnabled(true);
  traceInstant("before", "test");
  Tracer::instance().clear();
  EXPECT_EQ(Tracer::instance().eventCount(), 0u);
  EXPECT_TRUE(Tracer::isEnabled());
  traceInstant("after", "test");
  EXPECT_EQ(Tracer::instance().eventCount(), 1u);
}

TEST_F(ObservabilityTest, WriteChromeJsonReportsFailure) {
  EXPECT_FALSE(Tracer::instance().writeChromeJson(
      "/nonexistent-dir-for-quals-test/trace.json"));
}

TEST_F(ObservabilityTest, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(jsonEscape(std::string("a\x01z")), "a\\u0001z");
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

TEST(Metrics, DuplicateRegistrationReturnsSameObject) {
  MetricsRegistry R;
  Counter &C1 = R.counter("dup");
  Counter &C2 = R.counter("dup");
  EXPECT_EQ(&C1, &C2);
  Gauge &G1 = R.gauge("dup");
  Gauge &G2 = R.gauge("dup");
  EXPECT_EQ(&G1, &G2);
  TimerMetric &T1 = R.timer("dup");
  TimerMetric &T2 = R.timer("dup");
  EXPECT_EQ(&T1, &T2);
  // Same name, different kind: distinct namespaces, distinct objects.
  C1.add(3);
  G1.set(-5);
  EXPECT_EQ(C2.value(), 3u);
  EXPECT_EQ(G2.value(), -5);
}

TEST(Metrics, ValuesAccumulateAndReset) {
  MetricsRegistry R;
  R.counter("c").add();
  R.counter("c").add(9);
  EXPECT_EQ(R.counter("c").value(), 10u);
  R.gauge("g").set(100);
  R.gauge("g").add(-30);
  EXPECT_EQ(R.gauge("g").value(), 70);
  R.timer("t").addSeconds(0.25);
  R.timer("t").addSeconds(0.5);
  EXPECT_NEAR(R.timer("t").seconds(), 0.75, 1e-6);
  EXPECT_EQ(R.timer("t").count(), 2u);

  R.resetValues();
  EXPECT_EQ(R.counter("c").value(), 0u);
  EXPECT_EQ(R.gauge("g").value(), 0);
  EXPECT_EQ(R.timer("t").count(), 0u);
  EXPECT_FALSE(R.empty()); // registrations survive a value reset
}

TEST(Metrics, EmptyRegistryRenders) {
  MetricsRegistry R;
  EXPECT_TRUE(R.empty());
  // Rendering an empty registry must not crash and must stay parseable.
  std::string Json = R.renderJson();
  EXPECT_NE(Json.find("\"counters\":{}"), std::string::npos);
  EXPECT_NE(Json.find("\"timers\":{}"), std::string::npos);
  (void)R.renderTable();
}

TEST(Metrics, ZeroCountMetricsStillRender) {
  MetricsRegistry R;
  R.counter("touched.never");
  R.timer("timed.never");
  std::string Table = R.renderTable();
  EXPECT_NE(Table.find("touched.never"), std::string::npos);
  EXPECT_NE(Table.find("timed.never"), std::string::npos);
  std::string Json = R.renderJson();
  EXPECT_NE(Json.find("\"touched.never\":0"), std::string::npos);
  EXPECT_NE(Json.find("\"count\":0"), std::string::npos);
}

TEST(Metrics, RenderJsonSortsKeysStably) {
  MetricsRegistry R;
  R.counter("zeta");
  R.counter("alpha");
  R.gauge("mid").set(4);
  std::string Json = R.renderJson();
  size_t A = Json.find("\"alpha\"");
  size_t Z = Json.find("\"zeta\"");
  ASSERT_NE(A, std::string::npos);
  ASSERT_NE(Z, std::string::npos);
  EXPECT_LT(A, Z);
  EXPECT_NE(Json.find("\"mid\":4"), std::string::npos);
  // Deterministic: rendering twice gives the identical document.
  EXPECT_EQ(Json, R.renderJson());
}

TEST(Metrics, RenderTableShowsTimerSampleCounts) {
  MetricsRegistry R;
  R.timer("phase.fake").addSeconds(0.002);
  R.timer("phase.fake").addSeconds(0.001);
  std::string Table = R.renderTable();
  EXPECT_NE(Table.find("phase.fake"), std::string::npos);
  EXPECT_NE(Table.find("(x2)"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// PhaseScope + observabilityActive
//===----------------------------------------------------------------------===//

TEST_F(ObservabilityTest, ObservabilityActiveTracksEitherSink) {
  EXPECT_FALSE(observabilityActive());
  Tracer::instance().setEnabled(true);
  EXPECT_TRUE(observabilityActive());
  Tracer::instance().setEnabled(false);
  MetricsRegistry::setCollecting(true);
  EXPECT_TRUE(observabilityActive());
}

TEST_F(ObservabilityTest, PhaseScopePublishesTimerAndArenaBytes) {
  MetricsRegistry::setCollecting(true);
  MetricsRegistry &R = MetricsRegistry::global();
  uint64_t CountBefore = R.timer("phase.obs_test").count();
  {
    PhaseScope Phase("obs_test", "test");
    BumpPtrAllocator A;
    (void)A.allocate(4096, 8);
  }
  EXPECT_EQ(R.timer("phase.obs_test").count(), CountBefore + 1);
  EXPECT_GE(R.timer("phase.obs_test").seconds(), 0.0);
  // The arena gauge charges the phase with bytes bump-allocated while it
  // was open -- at least the 4 KiB requested above.
  EXPECT_GE(R.gauge("phase.obs_test.arena_bytes").value(), 4096);
}

TEST_F(ObservabilityTest, PhaseScopeInertWhenAllSinksOff) {
  MetricsRegistry &R = MetricsRegistry::global();
  uint64_t CountBefore = R.timer("phase.obs_inert").count();
  { PhaseScope Phase("obs_inert", "test"); }
  EXPECT_EQ(R.timer("phase.obs_inert").count(), CountBefore);
  EXPECT_EQ(Tracer::instance().eventCount(), 0u);
}

TEST_F(ObservabilityTest, PhaseScopeEmitsTraceSpanWithArgs) {
  Tracer::instance().setEnabled(true);
  {
    PhaseScope Phase("obs_span", "test");
    Phase.setTraceArgs("\"items\":3");
  }
  auto Events = Tracer::instance().snapshot();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_EQ(Events[0].Name, "obs_span");
  EXPECT_EQ(Events[0].Args, "\"items\":3");
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

TEST(Histogram, ExactBucketsBelowSixteen) {
  for (uint64_t V = 0; V != 16; ++V) {
    EXPECT_EQ(Histogram::bucketIndex(V), V);
    EXPECT_EQ(Histogram::bucketLo(static_cast<unsigned>(V)), V);
    EXPECT_EQ(Histogram::bucketHi(static_cast<unsigned>(V)), V + 1);
  }
}

TEST(Histogram, LogBucketBoundaries) {
  // Octave 4 (16..31) splits into 4 sub-buckets of width 4.
  EXPECT_EQ(Histogram::bucketIndex(16), 16u);
  EXPECT_EQ(Histogram::bucketIndex(19), 16u);
  EXPECT_EQ(Histogram::bucketIndex(20), 17u);
  EXPECT_EQ(Histogram::bucketIndex(24), 18u);
  EXPECT_EQ(Histogram::bucketIndex(28), 19u);
  EXPECT_EQ(Histogram::bucketIndex(31), 19u);
  EXPECT_EQ(Histogram::bucketIndex(32), 20u);
  // The layout is self-consistent: every bucket's lower bound maps back to
  // the bucket, buckets tile the range with no gaps, and the largest value
  // lands in the last bucket.
  for (unsigned I = 0; I != Histogram::NumBuckets; ++I) {
    EXPECT_EQ(Histogram::bucketIndex(Histogram::bucketLo(I)), I);
    if (I + 1 < Histogram::NumBuckets)
      EXPECT_EQ(Histogram::bucketHi(I), Histogram::bucketLo(I + 1));
  }
  EXPECT_EQ(Histogram::bucketIndex(UINT64_MAX), Histogram::NumBuckets - 1);
  EXPECT_EQ(Histogram::bucketHi(Histogram::NumBuckets - 1), UINT64_MAX);
}

TEST(Histogram, QuantilesAreExactForSmallValues) {
  Histogram H;
  for (uint64_t V = 0; V != 10; ++V)
    H.record(V);
  // Rank semantics: quantile(p) is the ceil(p*n)-th smallest sample; small
  // values live in width-1 buckets, so the answer is exact.
  EXPECT_EQ(H.quantile(0.10), 0u);
  EXPECT_EQ(H.quantile(0.50), 4u);
  EXPECT_EQ(H.quantile(1.00), 9u);
  EXPECT_EQ(H.quantile(0.00), 0u);
}

TEST(Histogram, QuantileEstimateStaysWithinBucketWidth) {
  Histogram H;
  for (unsigned I = 0; I != 1000; ++I)
    H.record(500);
  // 500 lands in log bucket [448, 512); the estimate is the midpoint,
  // clamped into the recorded range -- within the layout's ~12.5% bound.
  uint64_t Est = H.quantile(0.50);
  EXPECT_EQ(Est, 479u);
  EXPECT_LE(Est, 500u);
  EXPECT_GE(Est, 448u);
}

TEST(Histogram, SkewedDistributionPercentiles) {
  Histogram H;
  for (unsigned I = 0; I != 90; ++I)
    H.record(10);
  for (unsigned I = 0; I != 9; ++I)
    H.record(1000);
  H.record(100000);
  EXPECT_EQ(H.quantile(0.50), 10u);
  EXPECT_EQ(H.quantile(0.90), 10u);
  // p99 falls in 1000's bucket [896, 1024): midpoint 959.
  EXPECT_EQ(H.quantile(0.99), 959u);
  EXPECT_EQ(H.count(), 100u);
  EXPECT_EQ(H.min(), 10u);
  EXPECT_EQ(H.max(), 100000u);
}

TEST(Histogram, SumMeanMinMaxTrack) {
  Histogram H;
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 0u);
  EXPECT_EQ(H.mean(), 0.0);
  H.record(4);
  H.record(6);
  EXPECT_EQ(H.sum(), 10u);
  EXPECT_EQ(H.mean(), 5.0);
  EXPECT_EQ(H.min(), 4u);
  EXPECT_EQ(H.max(), 6u);
}

TEST(Histogram, ResetClearsEverything) {
  Histogram H;
  H.record(3);
  H.record(70000);
  H.reset();
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.sum(), 0u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 0u);
  EXPECT_EQ(H.quantile(0.99), 0u);
  for (unsigned I = 0; I != Histogram::NumBuckets; ++I)
    EXPECT_EQ(H.bucketCount(I), 0u);
  // And it keeps recording after a reset.
  H.record(3);
  EXPECT_EQ(H.count(), 1u);
  EXPECT_EQ(H.quantile(0.5), 3u);
}

TEST(Histogram, RegistryRenderingIsDeterministic) {
  // A private registry so the global one stays untouched.
  MetricsRegistry R;
  Histogram &H = R.histogram("test.latency");
  EXPECT_EQ(&H, &R.histogram("test.latency"));
  H.record(2);
  H.record(500);
  std::string Pretty = R.renderJson();
  EXPECT_EQ(Pretty, R.renderJson());
  // The histogram section carries totals, percentiles, and only the
  // non-empty buckets as [lo, hi, count] triples.
  EXPECT_NE(Pretty.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(Pretty.find("\"test.latency\":{\"count\":2"), std::string::npos);
  EXPECT_NE(Pretty.find("\"buckets\":[[2,3,1],[448,512,1]]"),
            std::string::npos);
  // Compact mode: identical bytes minus the whitespace, a single line.
  std::string Compact = R.renderJson(/*Compact=*/true);
  EXPECT_EQ(Compact.find('\n'), std::string::npos);
  std::string Flattened = Pretty;
  std::string Cleaned;
  for (char C : Flattened)
    if (C != '\n' && C != ' ')
      Cleaned += C;
  EXPECT_EQ(Compact, Cleaned);
  // The table view shows the percentile summary.
  EXPECT_NE(R.renderTable().find("histogram"), std::string::npos);
  EXPECT_NE(R.renderTable().find("p50="), std::string::npos);
}

TEST(Histogram, RegistryResetValuesCoversHistograms) {
  MetricsRegistry R;
  R.histogram("h").record(7);
  EXPECT_FALSE(R.empty());
  R.resetValues();
  EXPECT_EQ(R.histogram("h").count(), 0u);
}

TEST(ObservabilityConcurrency, HistogramRecordingIsLockFreeAndExact) {
  // Hammer one histogram from every worker; totals and per-bucket counts
  // must be exact after the pool quiesces (record() is wait-free relaxed
  // atomics -- this is also the TSan coverage for concurrent recording).
  Histogram H;
  constexpr unsigned Tasks = 8;
  constexpr unsigned PerTask = 20000;
  ThreadPool Pool(4);
  Pool.parallelForEach(Tasks, [&H](size_t Task) {
    for (unsigned I = 0; I != PerTask; ++I)
      H.record((Task * PerTask + I) % 16);
  });
  EXPECT_EQ(H.count(), static_cast<uint64_t>(Tasks) * PerTask);
  uint64_t BucketTotal = 0;
  for (unsigned I = 0; I != Histogram::NumBuckets; ++I)
    BucketTotal += H.bucketCount(I);
  EXPECT_EQ(BucketTotal, H.count());
  // Values cycle 0..15 uniformly: every exact bucket holds 1/16th.
  for (unsigned I = 0; I != 16; ++I)
    EXPECT_EQ(H.bucketCount(I), static_cast<uint64_t>(Tasks) * PerTask / 16);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 15u);
}

//===----------------------------------------------------------------------===//
// PhaseCapture
//===----------------------------------------------------------------------===//

TEST_F(ObservabilityTest, PhaseCaptureCollectsWithoutGlobalCollection) {
  // The per-request capture works with --metrics off: that is its point
  // (qualsd's request log must see phase breakdowns on un-instrumented
  // daemons).
  ASSERT_FALSE(MetricsRegistry::collecting());
  PhaseCapture Capture;
  {
    PhaseScope Outer("cap_outer", "test");
    { PhaseScope Inner("cap_inner", "test"); }
  }
  ASSERT_EQ(Capture.samples().size(), 2u);
  // Completion order: inner scope closes first.
  EXPECT_STREQ(Capture.samples()[0].Name, "cap_inner");
  EXPECT_STREQ(Capture.samples()[1].Name, "cap_outer");
}

TEST_F(ObservabilityTest, PhaseCaptureStacksAndRestores) {
  PhaseCapture Outer;
  {
    PhaseCapture Inner;
    EXPECT_EQ(PhaseCapture::current(), &Inner);
    { PhaseScope P("cap_stacked", "test"); }
    EXPECT_EQ(Inner.samples().size(), 1u);
  }
  EXPECT_EQ(PhaseCapture::current(), &Outer);
  EXPECT_TRUE(Outer.samples().empty());
  { PhaseScope P("cap_after", "test"); }
  ASSERT_EQ(Outer.samples().size(), 1u);
  EXPECT_STREQ(Outer.samples()[0].Name, "cap_after");
}

TEST_F(ObservabilityTest, PhaseScopeLatchesCaptureAtConstruction) {
  // A scope opened before a capture installs must not report into it.
  PhaseScope *Scope = new PhaseScope("cap_latched", "test");
  PhaseCapture Capture;
  delete Scope;
  EXPECT_TRUE(Capture.samples().empty());
}

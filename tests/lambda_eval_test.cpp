//===- tests/lambda_eval_test.cpp - Operational semantics tests -----------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the Figure 5 single-step semantics: qualified values, the
/// annotation/assertion side conditions, store operations, and agreement
/// between runtime behaviour and the static system (the soundness direction
/// of Corollary 1 is property-tested in lambda_soundness_test.cpp).
///
//===----------------------------------------------------------------------===//

#include "LambdaTestUtil.h"

#include <gtest/gtest.h>

using namespace quals;
using namespace quals::lambda;

namespace {

long intResult(const Rig &, const EvalResult &E) {
  const Expr *Bare = Evaluator::bareValue(E.Result);
  return cast<IntLitExpr>(Bare)->getValue();
}

TEST(LambdaEval, LiteralIsAValue) {
  Rig R;
  EvalResult E = R.run("42");
  ASSERT_EQ(E.Outcome, EvalOutcome::Value);
  EXPECT_EQ(intResult(R, E), 42);
  EXPECT_EQ(E.Steps, 0u);
}

TEST(LambdaEval, BetaReduction) {
  Rig R;
  EvalResult E = R.run("(fn x. x) 7");
  ASSERT_EQ(E.Outcome, EvalOutcome::Value);
  EXPECT_EQ(intResult(R, E), 7);
}

TEST(LambdaEval, CurriedApplication) {
  Rig R;
  EvalResult E = R.run("((fn a. fn b. a) 1) 2");
  ASSERT_EQ(E.Outcome, EvalOutcome::Value);
  EXPECT_EQ(intResult(R, E), 1);
}

TEST(LambdaEval, ShadowingRespectsScopes) {
  Rig R;
  EvalResult E = R.run("(fn x. (fn x. x) 2) 1");
  ASSERT_EQ(E.Outcome, EvalOutcome::Value);
  EXPECT_EQ(intResult(R, E), 2);
}

TEST(LambdaEval, IfBranchesOnNonzero) {
  Rig R;
  EXPECT_EQ(intResult(R, R.run("if 5 then 10 else 20 fi")), 10);
  Rig R2;
  EXPECT_EQ(intResult(R2, R2.run("if 0 then 10 else 20 fi")), 20);
}

TEST(LambdaEval, LetBindsValues) {
  Rig R;
  EvalResult E = R.run("let x = 3 in let y = 4 in x ni ni");
  ASSERT_EQ(E.Outcome, EvalOutcome::Value);
  EXPECT_EQ(intResult(R, E), 3);
}

TEST(LambdaEval, RefDerefAssignRoundTrip) {
  Rig R;
  EvalResult E = R.run("let r = ref 1 in let s = r := 9 in !r ni ni");
  ASSERT_EQ(E.Outcome, EvalOutcome::Value);
  EXPECT_EQ(intResult(R, E), 9);
}

TEST(LambdaEval, AliasedRefsShareStorage) {
  Rig R;
  EvalResult E = R.run(
      "let x = ref 1 in let y = x in let s = y := 5 in !x ni ni ni");
  ASSERT_EQ(E.Outcome, EvalOutcome::Value);
  EXPECT_EQ(intResult(R, E), 5);
}

TEST(LambdaEval, AnnotatedValueKeepsQualifier) {
  Rig R;
  EvalResult E = R.run("{const} 42");
  ASSERT_EQ(E.Outcome, EvalOutcome::Value);
  Evaluator Ev(R.Ast, R.QS);
  EXPECT_TRUE(R.QS.contains(Ev.valueQual(E.Result), R.Const));
}

TEST(LambdaEval, AssertionPassesWhenQualifierFits) {
  // ({nonzero} 37)|{nonzero} reduces (Figure 5's first rule).
  Rig R;
  EvalResult E = R.run("({nonzero} 37) |{nonzero}");
  EXPECT_EQ(E.Outcome, EvalOutcome::Value);
}

TEST(LambdaEval, AssertionSticksWhenQualifierExceedsBound) {
  Rig R;
  EvalResult E = R.run("({const} 1) |{~const}");
  ASSERT_EQ(E.Outcome, EvalOutcome::Stuck);
  EXPECT_NE(E.StuckReason.find("assertion"), std::string::npos);
}

TEST(LambdaEval, AnnotationSticksWhenLoweringQualifier) {
  // l1 (l2 v) needs l2 <= l1.
  Rig R;
  EvalResult E = R.run("{nonzero} ({const} 1)");
  ASSERT_EQ(E.Outcome, EvalOutcome::Stuck);
  EXPECT_NE(E.StuckReason.find("annotation"), std::string::npos);
}

TEST(LambdaEval, AnnotationRaisesQualifier) {
  Rig R;
  EvalResult E = R.run("{const nonzero} ({nonzero} 1)");
  ASSERT_EQ(E.Outcome, EvalOutcome::Value);
  Evaluator Ev(R.Ast, R.QS);
  EXPECT_TRUE(R.QS.contains(Ev.valueQual(E.Result), R.Const));
}

TEST(LambdaEval, AnnotatedRefAllocatesQualifiedLocation) {
  // {const} ref v -> {const} a (Figure 5's ref rule under Q ref R context).
  Rig R;
  EvalResult E = R.run("{const} ref 1");
  ASSERT_EQ(E.Outcome, EvalOutcome::Value);
  Evaluator Ev(R.Ast, R.QS);
  EXPECT_TRUE(R.QS.contains(Ev.valueQual(E.Result), R.Const));
  EXPECT_TRUE(isa<LocExpr>(Evaluator::bareValue(E.Result)));
}

TEST(LambdaEval, StoreHoldsQualifiedValues) {
  Rig R;
  const Expr *E = R.parse("let r = ref {nonzero} 37 in (!r)|{nonzero} ni");
  ASSERT_NE(E, nullptr);
  Evaluator Ev(R.Ast, R.QS);
  EvalResult Res = Ev.evaluate(E);
  EXPECT_EQ(Res.Outcome, EvalOutcome::Value);
  ASSERT_EQ(Ev.getStore().size(), 1u);
}

TEST(LambdaEval, ApplyingNonFunctionIsStuck) {
  Rig R;
  EvalResult E = R.run("1 2");
  ASSERT_EQ(E.Outcome, EvalOutcome::Stuck);
  EXPECT_NE(E.StuckReason.find("non-function"), std::string::npos);
}

TEST(LambdaEval, DerefOfIntIsStuck) {
  Rig R;
  EXPECT_EQ(R.run("!5").Outcome, EvalOutcome::Stuck);
}

TEST(LambdaEval, FreeVariableIsStuck) {
  Rig R;
  EXPECT_EQ(R.run("y").Outcome, EvalOutcome::Stuck);
}

TEST(LambdaEval, DivergingProgramTimesOut) {
  // Omega via a self-application through a ref (typable? no -- but the
  // evaluator is untyped): (fn x. x x)(fn x. x x).
  Rig R;
  EvalResult E = R.run("(fn x. x x) (fn x. x x)", /*MaxSteps=*/500);
  EXPECT_EQ(E.Outcome, EvalOutcome::TimedOut);
  EXPECT_EQ(E.Steps, 500u);
}

TEST(LambdaEval, EvaluationOrderIsLeftToRight) {
  // The left side of := is evaluated first: a failing assertion on the left
  // must stick before the right side's would.
  Rig R;
  EvalResult E =
      R.run("(({const} ref 0) |{~const}) := (({const} 1) |{~const})");
  ASSERT_EQ(E.Outcome, EvalOutcome::Stuck);
  // The left assertion is the one reported (both would fail).
  EXPECT_NE(E.StuckReason.find("assertion"), std::string::npos);
}

TEST(LambdaEval, WellTypedPaperExampleRunsCleanly) {
  // The accepted variant of the Section 2.4 program runs to a value.
  Rig R;
  EvalResult E = R.run(
      "let x = ref {nonzero} 37 in"
      " let y = x in"
      "  let s = y := ({nonzero} 12) in"
      "   (!x)|{nonzero}"
      "  ni ni ni");
  ASSERT_EQ(E.Outcome, EvalOutcome::Value);
  EXPECT_EQ(intResult(R, E), 12);
}

TEST(LambdaEval, StepObserverSeesEveryReduction) {
  Rig R;
  const Expr *E = R.parse("let x = 1 in (fn y. y) x ni");
  ASSERT_NE(E, nullptr);
  Evaluator Ev(R.Ast, R.QS);
  std::vector<std::string> Steps;
  EvalResult Res = Ev.evaluate(E, 100, [&](const Expr *Term) {
    Steps.push_back(toString(R.QS, Term));
  });
  ASSERT_EQ(Res.Outcome, EvalOutcome::Value);
  ASSERT_EQ(Steps.size(), Res.Steps);
  // let substitutes, then beta-reduction fires.
  EXPECT_EQ(Steps[0], "((fn y. y) 1)");
  EXPECT_EQ(Steps.back(), "1");
}

TEST(LambdaEval, IllTypedPaperExampleActuallySticks) {
  // The rejected variant really does go wrong at runtime: the assertion
  // fails after 0 is smuggled through the alias. This is the dynamic
  // counterpart of QualInfer.PaperSection24NonzeroSmugglingRejected.
  Rig R;
  EvalResult E = R.run(
      "let x = ref {nonzero} 37 in"
      " let y = x in"
      "  let s = y := ({~nonzero} 0) in"
      "   (!x)|{nonzero}"
      "  ni ni ni");
  ASSERT_EQ(E.Outcome, EvalOutcome::Stuck);
  EXPECT_NE(E.StuckReason.find("assertion"), std::string::npos);
}

} // namespace

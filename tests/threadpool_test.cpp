//===- tests/threadpool_test.cpp - ThreadPool + batch driver tests --------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
//
// Covers the parallel batch layer: support/ThreadPool (task ordering,
// exceptions-off error paths, graceful shutdown) and tools/BatchDriver
// (response-file expansion, jobs-flag parsing, input-order deterministic
// flushing, worst-exit-code propagation), plus the concurrent-first-use
// regression for the observability singletons (metric registration and
// trace thread-id assignment from many pool workers at once) that the CI
// ThreadSanitizer job exercises.
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include "BatchDriver.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <unistd.h>

using namespace quals;

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPool, RunsEveryEnqueuedTask) {
  std::atomic<int> Ran{0};
  ThreadPool Pool(4);
  for (int I = 0; I != 100; ++I)
    Pool.enqueue([&Ran] { Ran.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Ran.load(), 100);
}

TEST(ThreadPool, SingleWorkerRunsTasksInFifoOrder) {
  // One worker picks tasks strictly in enqueue order; the determinism of
  // -j1 batch runs rests on this.
  std::vector<int> Order;
  ThreadPool Pool(1);
  for (int I = 0; I != 50; ++I)
    Pool.enqueue([&Order, I] { Order.push_back(I); });
  Pool.wait();
  ASSERT_EQ(Order.size(), 50u);
  for (int I = 0; I != 50; ++I)
    EXPECT_EQ(Order[I], I);
}

TEST(ThreadPool, DestructorDrainsRemainingQueue) {
  // Graceful shutdown: tasks still queued when the destructor runs must
  // execute, not vanish.
  std::atomic<int> Ran{0};
  {
    ThreadPool Pool(2);
    for (int I = 0; I != 64; ++I)
      Pool.enqueue([&Ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        Ran.fetch_add(1);
      });
    // No wait(): destruction races the queue on purpose.
  }
  EXPECT_EQ(Ran.load(), 64);
}

TEST(ThreadPool, DestructorRunsTasksEnqueuedDuringShutdown) {
  // The shutdown race the server relies on: a still-running task enqueues a
  // follow-up while the destructor has already set Stop and other workers
  // have exited on an empty queue. enqueue() promises the follow-up runs;
  // the destructor drains such stragglers inline after joining.
  std::atomic<int> Ran{0};
  {
    ThreadPool Pool(2);
    for (int I = 0; I != 16; ++I)
      Pool.enqueue([&Pool, &Ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        Ran.fetch_add(1);
        Pool.enqueue([&Pool, &Ran] {
          Ran.fetch_add(1);
          // Third link: enqueued by a task that may itself already be
          // running on the destructor's inline drain loop.
          Pool.enqueue([&Ran] { Ran.fetch_add(1); });
        });
      });
    // No wait(): destruction races the chain on purpose.
  }
  EXPECT_EQ(Ran.load(), 48);
}

TEST(ThreadPool, ParallelForEachEmptyRangeWithBusyPool) {
  // An empty range must return immediately without enqueuing pump tasks,
  // even while unrelated tasks keep the workers busy (the server calls
  // parallelForEach-style helpers with request-derived counts, which can
  // legitimately be zero).
  ThreadPool Pool(2);
  std::atomic<int> Background{0};
  for (int I = 0; I != 32; ++I)
    Pool.enqueue([&Background] {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      Background.fetch_add(1);
    });
  for (int I = 0; I != 8; ++I)
    Pool.parallelForEach(0, [](size_t) { FAIL() << "no indices exist"; });
  Pool.wait();
  EXPECT_EQ(Background.load(), 32);
}

TEST(ThreadPool, WaitIsReusableBetweenBatches) {
  std::atomic<int> Ran{0};
  ThreadPool Pool(3);
  Pool.enqueue([&Ran] { Ran.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Ran.load(), 1);
  for (int I = 0; I != 10; ++I)
    Pool.enqueue([&Ran] { Ran.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Ran.load(), 11);
}

TEST(ThreadPool, ParallelForEachVisitsEveryIndexExactlyOnce) {
  constexpr size_t N = 1000;
  std::vector<std::atomic<int>> Hits(N);
  ThreadPool Pool(4);
  Pool.parallelForEach(N, [&Hits](size_t I) { Hits[I].fetch_add(1); });
  for (size_t I = 0; I != N; ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(ThreadPool, ParallelForEachHandlesEdgeCounts) {
  ThreadPool Pool(4);
  Pool.parallelForEach(0, [](size_t) { FAIL() << "no indices exist"; });
  std::atomic<int> Ran{0};
  Pool.parallelForEach(1, [&Ran](size_t I) {
    EXPECT_EQ(I, 0u);
    Ran.fetch_add(1);
  });
  EXPECT_EQ(Ran.load(), 1);
}

TEST(ThreadPool, ChunkedParallelForEachCoversRangeExactlyOnce) {
  constexpr size_t N = 1000;
  constexpr size_t Grain = 64;
  std::vector<std::atomic<int>> Hits(N);
  std::atomic<int> BadChunks{0};
  ThreadPool Pool(4);
  Pool.parallelForEach(N, Grain, [&](size_t Begin, size_t End) {
    if (Begin >= End || End > N || Begin % Grain != 0 ||
        (End - Begin > Grain))
      BadChunks.fetch_add(1);
    for (size_t I = Begin; I != End; ++I)
      Hits[I].fetch_add(1);
  });
  EXPECT_EQ(BadChunks.load(), 0);
  for (size_t I = 0; I != N; ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(ThreadPool, ChunkedParallelForEachHandlesEdgeGrains) {
  ThreadPool Pool(2);
  // Empty range: the chunk callback must never run.
  Pool.parallelForEach(0, 16, [](size_t, size_t) {
    FAIL() << "no indices exist";
  });
  // Grain larger than the range: exactly one chunk covering everything.
  std::atomic<int> Chunks{0};
  Pool.parallelForEach(3, 100, [&Chunks](size_t Begin, size_t End) {
    EXPECT_EQ(Begin, 0u);
    EXPECT_EQ(End, 3u);
    Chunks.fetch_add(1);
  });
  EXPECT_EQ(Chunks.load(), 1);
  // Grain 0 is treated as 1 (defensive; callers compute grains).
  std::atomic<int> Singles{0};
  Pool.parallelForEach(5, 0, [&Singles](size_t Begin, size_t End) {
    EXPECT_EQ(End, Begin + 1);
    Singles.fetch_add(1);
  });
  EXPECT_EQ(Singles.load(), 5);
}

TEST(ThreadPool, ChunkedParallelForEachFromInsideAPoolTask) {
  // The chunked overload participates from the calling thread, so a task
  // already running on the pool can fan out over the same pool without
  // deadlocking even when every other worker is busy (the solver relies on
  // this when qualsd shards dense solves; docs/PARALLEL.md).
  ThreadPool Pool(2);
  std::atomic<int> Covered{0};
  std::atomic<bool> Done{false};
  Pool.enqueue([&] {
    Pool.parallelForEach(64, 8, [&Covered](size_t Begin, size_t End) {
      Covered.fetch_add(static_cast<int>(End - Begin));
    });
    Done = true;
  });
  Pool.wait();
  EXPECT_TRUE(Done.load());
  EXPECT_EQ(Covered.load(), 64);
}

TEST(ThreadPool, ChunkedWorkUnderLoadStillDrainsOnShutdown) {
  // Regression for the chunked overload's pump accounting: a pool whose
  // queue holds both plain tasks and chunk pumps must finish every piece
  // of work before the destructor returns -- nothing may be dropped or
  // double-freed when shutdown races active chunk dispatch.
  std::atomic<int> Background{0};
  std::atomic<int> Covered{0};
  {
    ThreadPool Pool(3);
    for (int I = 0; I != 64; ++I)
      Pool.enqueue([&Background] {
        std::this_thread::sleep_for(std::chrono::microseconds(20));
        Background.fetch_add(1);
      });
    // Runs to completion before the destructor (the call blocks), with the
    // queue still loaded -- the caller thread pulls chunks itself even
    // when every worker is stuck behind background tasks.
    Pool.parallelForEach(256, 16, [&Covered](size_t Begin, size_t End) {
      Covered.fetch_add(static_cast<int>(End - Begin));
    });
    EXPECT_EQ(Covered.load(), 256);
  } // Destructor drains the remaining background tasks.
  EXPECT_EQ(Background.load(), 64);
}

TEST(ThreadPool, ZeroWorkerRequestGetsOneWorker) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.numWorkers(), 1u);
  std::atomic<bool> Ran{false};
  Pool.enqueue([&Ran] { Ran = true; });
  Pool.wait();
  EXPECT_TRUE(Ran.load());
}

TEST(ThreadPool, DefaultWorkersIsPositive) {
  EXPECT_GE(ThreadPool::defaultWorkers(), 1u);
}

//===----------------------------------------------------------------------===//
// BatchDriver: argument expansion
//===----------------------------------------------------------------------===//

namespace {

/// Creates a file under a fresh temp directory; returns its path.
class TempDir {
public:
  TempDir() {
    Dir = std::filesystem::temp_directory_path() /
          ("quals_tp_test_" + std::to_string(::getpid()) + "_" +
           std::to_string(Counter++));
    std::filesystem::create_directories(Dir);
  }
  ~TempDir() {
    std::error_code Ec;
    std::filesystem::remove_all(Dir, Ec);
  }
  std::string write(const std::string &Name, const std::string &Contents) {
    std::string Path = (Dir / Name).string();
    std::ofstream Out(Path, std::ios::binary);
    Out << Contents;
    return Path;
  }
  std::filesystem::path Dir;

private:
  static int Counter;
};

int TempDir::Counter = 0;

} // namespace

TEST(BatchDriver, ExpandArgPassesPlainPathsThrough) {
  std::vector<std::string> Files;
  std::string Error;
  ASSERT_TRUE(batch::expandArg("a.c", Files, Error));
  ASSERT_TRUE(batch::expandArg("b.c", Files, Error));
  EXPECT_EQ(Files, (std::vector<std::string>{"a.c", "b.c"}));
}

TEST(BatchDriver, ExpandArgReadsResponseFiles) {
  TempDir T;
  std::string Rsp = T.write("list.rsp", "one.c\n"
                                        "  two.c  \n"
                                        "\n"
                                        "# a comment\n"
                                        "three.c\n");
  std::vector<std::string> Files;
  std::string Error;
  ASSERT_TRUE(batch::expandArg("@" + Rsp, Files, Error)) << Error;
  EXPECT_EQ(Files, (std::vector<std::string>{"one.c", "two.c", "three.c"}));
}

TEST(BatchDriver, ExpandArgFollowsNestedResponseFiles) {
  TempDir T;
  std::string Inner = T.write("inner.rsp", "deep.c\n");
  std::string Outer = T.write("outer.rsp", "first.c\n@" + Inner + "\n");
  std::vector<std::string> Files;
  std::string Error;
  ASSERT_TRUE(batch::expandArg("@" + Outer, Files, Error)) << Error;
  EXPECT_EQ(Files, (std::vector<std::string>{"first.c", "deep.c"}));
}

TEST(BatchDriver, ExpandArgReportsMissingResponseFile) {
  std::vector<std::string> Files;
  std::string Error;
  EXPECT_FALSE(batch::expandArg("@/no/such/file.rsp", Files, Error));
  EXPECT_NE(Error.find("/no/such/file.rsp"), std::string::npos);
}

TEST(BatchDriver, ExpandArgRejectsResponseFileCycles) {
  TempDir T;
  std::string Path = (T.Dir / "self.rsp").string();
  T.write("self.rsp", "@" + Path + "\n");
  std::vector<std::string> Files;
  std::string Error;
  EXPECT_FALSE(batch::expandArg("@" + Path, Files, Error));
  EXPECT_NE(Error.find("nested too deeply"), std::string::npos);
}

TEST(BatchDriver, ParseJobsFlagForms) {
  unsigned Jobs = 0;
  bool ConsumedNext = false;
  std::string Error;

  EXPECT_TRUE(batch::parseJobsFlag("-j8", nullptr, Jobs, ConsumedNext, Error));
  EXPECT_EQ(Jobs, 8u);
  EXPECT_FALSE(ConsumedNext);
  EXPECT_TRUE(Error.empty());

  EXPECT_TRUE(batch::parseJobsFlag("--jobs=3", nullptr, Jobs, ConsumedNext,
                                   Error));
  EXPECT_EQ(Jobs, 3u);

  EXPECT_TRUE(batch::parseJobsFlag("-j", "5", Jobs, ConsumedNext, Error));
  EXPECT_EQ(Jobs, 5u);
  EXPECT_TRUE(ConsumedNext);

  EXPECT_TRUE(batch::parseJobsFlag("--jobs", "7", Jobs, ConsumedNext, Error));
  EXPECT_EQ(Jobs, 7u);
  EXPECT_TRUE(ConsumedNext);

  EXPECT_FALSE(batch::parseJobsFlag("--mono", nullptr, Jobs, ConsumedNext,
                                    Error));
}

TEST(BatchDriver, ParseJobsFlagRejectsBadCounts) {
  unsigned Jobs = 0;
  bool ConsumedNext = false;
  std::string Error;
  EXPECT_TRUE(batch::parseJobsFlag("-j0", nullptr, Jobs, ConsumedNext, Error));
  EXPECT_FALSE(Error.empty());
  Error.clear();
  EXPECT_TRUE(
      batch::parseJobsFlag("-jfoo", nullptr, Jobs, ConsumedNext, Error));
  EXPECT_FALSE(Error.empty());
  Error.clear();
  EXPECT_TRUE(batch::parseJobsFlag("-j", nullptr, Jobs, ConsumedNext, Error));
  EXPECT_FALSE(Error.empty());
}

//===----------------------------------------------------------------------===//
// BatchDriver: ordered parallel execution
//===----------------------------------------------------------------------===//

namespace {

/// Runs runBatch with its streams redirected to tmpfile()s and returns
/// (stdout bytes, stderr bytes, exit code).
struct BatchCapture {
  std::string Out, Err;
  int Exit = 0;
};

BatchCapture runCaptured(const std::vector<std::string> &Files,
                         batch::BatchConfig Config,
                         const batch::AnalyzeFn &Analyze) {
  std::FILE *OutF = std::tmpfile();
  std::FILE *ErrF = std::tmpfile();
  Config.OutStream = OutF;
  Config.ErrStream = ErrF;
  BatchCapture C;
  C.Exit = batch::runBatch(Files, Config, Analyze);
  auto Slurp = [](std::FILE *F) {
    std::string S;
    std::rewind(F);
    char Buf[4096];
    for (size_t N; (N = std::fread(Buf, 1, sizeof(Buf), F)) != 0;)
      S.append(Buf, N);
    std::fclose(F);
    return S;
  };
  C.Out = Slurp(OutF);
  C.Err = Slurp(ErrF);
  return C;
}

} // namespace

TEST(BatchDriver, FlushesResultsInInputOrderDespiteCompletionOrder) {
  // The first file finishes last by a wide margin; its output must still
  // lead the stream at any -j.
  std::vector<std::string> Files{"slow", "mid", "fast0", "fast1", "fast2"};
  auto Analyze = [](const std::string &Path, size_t Index,
                    batch::FileResult &R) {
    if (Path == "slow")
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    else if (Path == "mid")
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    batch::appendf(R.Out, "out(%s,%zu)\n", Path.c_str(), Index);
    batch::appendf(R.Err, "err(%s)\n", Path.c_str());
  };
  const char *ExpectOut = "out(slow,0)\nout(mid,1)\nout(fast0,2)\n"
                          "out(fast1,3)\nout(fast2,4)\n";
  const char *ExpectErr = "err(slow)\nerr(mid)\nerr(fast0)\nerr(fast1)\n"
                          "err(fast2)\n";
  for (unsigned Jobs : {1u, 2u, 8u}) {
    batch::BatchConfig Config;
    Config.Jobs = Jobs;
    BatchCapture C = runCaptured(Files, Config, Analyze);
    EXPECT_EQ(C.Out, ExpectOut) << "-j" << Jobs;
    EXPECT_EQ(C.Err, ExpectErr) << "-j" << Jobs;
    EXPECT_EQ(C.Exit, 0) << "-j" << Jobs;
  }
}

TEST(BatchDriver, ReturnsWorstExitCodeWithoutExceptions) {
  // Error reporting is via exit codes and buffered stderr only -- the
  // exceptions-off contract of the analysis pipelines.
  std::vector<std::string> Files{"ok", "frontend-error", "qual-error", "ok2"};
  auto Analyze = [](const std::string &Path, size_t,
                    batch::FileResult &R) {
    if (Path == "frontend-error") {
      batch::appendf(R.Err, "cannot parse %s\n", Path.c_str());
      R.ExitCode = 1;
    } else if (Path == "qual-error") {
      R.ExitCode = 2;
    }
  };
  for (unsigned Jobs : {1u, 4u}) {
    batch::BatchConfig Config;
    Config.Jobs = Jobs;
    BatchCapture C = runCaptured(Files, Config, Analyze);
    EXPECT_EQ(C.Exit, 2) << "-j" << Jobs;
    EXPECT_EQ(C.Err, "cannot parse frontend-error\n") << "-j" << Jobs;
  }
}

TEST(BatchDriver, HeadersBannerEachFileOnStdoutOnly) {
  std::vector<std::string> Files{"a.q", "b.q"};
  batch::BatchConfig Config;
  Config.Jobs = 2;
  Config.Headers = true;
  BatchCapture C = runCaptured(
      Files, Config,
      [](const std::string &, size_t, batch::FileResult &R) {
        R.Out += "body\n";
      });
  EXPECT_EQ(C.Out, "== a.q ==\nbody\n== b.q ==\nbody\n");
  EXPECT_EQ(C.Err, "");
}

TEST(BatchDriver, PublishesBatchMetricsWhenCollecting) {
  MetricsRegistry &R = MetricsRegistry::global();
  R.counter("batch.files").reset();
  R.counter("batch.failed").reset();
  MetricsRegistry::setCollecting(true);
  std::vector<std::string> Files{"x", "y", "z"};
  batch::BatchConfig Config;
  Config.Jobs = 2;
  runCaptured(Files, Config,
              [](const std::string &Path, size_t, batch::FileResult &Res) {
                Res.ExitCode = Path == "y" ? 1 : 0;
              });
  MetricsRegistry::setCollecting(false);
  EXPECT_EQ(R.counter("batch.files").value(), 3u);
  EXPECT_EQ(R.counter("batch.failed").value(), 1u);
  EXPECT_EQ(R.gauge("batch.jobs").value(), 2);
  EXPECT_GE(R.timer("batch.wall").count(), 1u);
}

//===----------------------------------------------------------------------===//
// Observability under concurrency (the CI TSan job runs this binary)
//===----------------------------------------------------------------------===//

TEST(ObservabilityConcurrency, FirstUseFromManyWorkersIsSafe) {
  // Hammer metric registration (same and distinct names) and trace
  // recording (dense thread-id assignment on first use per thread) from
  // every worker at once. Pre-TSan this is the regression surface for the
  // registry mutex and Tracer::denseTidLocked.
  Tracer &T = Tracer::instance();
  T.clear();
  T.setEnabled(true);
  MetricsRegistry::setCollecting(true);
  MetricsRegistry &R = MetricsRegistry::global();
  R.counter("tsan.shared").reset();

  constexpr size_t N = 512;
  {
    ThreadPool Pool(8);
    Pool.parallelForEach(N, [&R](size_t I) {
      TraceScope Span("tsan.span", "test");
      R.counter("tsan.shared").add(1);
      R.counter("tsan.distinct." + std::to_string(I % 17)).add(1);
      R.timer("tsan.timer").addSeconds(1e-9);
      R.gauge("tsan.gauge").set(static_cast<int64_t>(I));
      traceInstant("tsan.instant", "test");
    });
  }

  T.setEnabled(false);
  MetricsRegistry::setCollecting(false);
  EXPECT_EQ(R.counter("tsan.shared").value(), N);
  EXPECT_EQ(R.timer("tsan.timer").count(), N);

  // Every span/instant was recorded, and worker spans landed on small
  // dense thread tracks.
  size_t Spans = 0, Instants = 0;
  uint32_t MaxTid = 0;
  for (const TraceEvent &E : T.snapshot()) {
    Spans += E.Name == "tsan.span";
    Instants += E.Name == "tsan.instant";
    MaxTid = std::max(MaxTid, E.Tid);
  }
  EXPECT_EQ(Spans, N);
  EXPECT_EQ(Instants, N);
  EXPECT_LT(MaxTid, 16u); // 8 workers + main thread at most.
  T.clear();
}

TEST(ObservabilityConcurrency, RenderWhileWorkersPublish) {
  // Rendering the registry concurrently with metric updates must be safe
  // (the batch driver prints metrics after the pool joins, but tests and
  // future long-running services may snapshot mid-flight).
  MetricsRegistry::setCollecting(true);
  MetricsRegistry &R = MetricsRegistry::global();
  std::atomic<bool> Stop{false};
  {
    ThreadPool Pool(4);
    for (int W = 0; W != 4; ++W)
      Pool.enqueue([&R, &Stop, W] {
        while (!Stop.load()) {
          R.counter("render.race." + std::to_string(W)).add(1);
          R.timer("render.race.t").addSeconds(1e-9);
        }
      });
    for (int I = 0; I != 50; ++I) {
      EXPECT_FALSE(R.renderTable().empty());
      EXPECT_FALSE(R.renderJson().empty());
    }
    Stop = true;
  }
  MetricsRegistry::setCollecting(false);
}

//===- tests/link_test.cpp - Cross-TU link pipeline tests ------------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
//
// The separate-compilation pipeline (docs/LINK.md): summary serialization
// round-trips, constraint-graph pruning, canonicalization, cross-TU symbol
// unification with its diagnostics, stale/corrupt-summary rejection, and
// the headline equivalence -- linking per-TU summaries classifies every
// position exactly as whole-program inference over the concatenation.
//
//===----------------------------------------------------------------------===//

#include "cfront/CParser.h"
#include "cfront/CSema.h"
#include "constinf/ConstInfer.h"
#include "link/Linker.h"
#include "link/Qsum.h"
#include "link/SummaryBuilder.h"
#include "support/Hash.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

using namespace quals;

namespace {

/// Front-end state for one analyzed TU, kept alive for the inference.
struct Unit {
  SourceManager SM;
  std::unique_ptr<DiagnosticEngine> Diags;
  cfront::CAstContext Ast;
  cfront::CTypeContext Types;
  StringInterner Idents;
  cfront::TranslationUnit TU;
  std::unique_ptr<constinf::ConstInference> Inf;

  Unit() : Diags(std::make_unique<DiagnosticEngine>(SM)) {}

  bool analyze(const std::vector<std::string> &Sources, bool SummaryMode) {
    for (size_t I = 0; I != Sources.size(); ++I)
      if (!cfront::parseCSource(SM, "tu" + std::to_string(I) + ".c",
                                std::string(Sources[I]), Ast, Types, Idents,
                                *Diags, TU))
        return false;
    cfront::CSema Sema(Ast, Types, Idents, *Diags);
    if (!Sema.analyze(TU))
      return false;
    constinf::ConstInference::Options Opts;
    // Summary interfaces are monomorphic (qualcc --emit-summary forces
    // --mono), so the whole-program reference must be monomorphic too.
    Opts.Polymorphic = false;
    Opts.SummaryMode = SummaryMode;
    Inf = std::make_unique<constinf::ConstInference>(TU, *Diags, Opts);
    return Inf->run();
  }
};

/// Runs the `qualcc --emit-summary` pipeline over \p Source.
link::TuSummary summarize(const std::string &Name, const std::string &Source,
                          uint64_t ContentHash = 0) {
  Unit U;
  EXPECT_TRUE(U.analyze({Source}, /*SummaryMode=*/true))
      << U.Diags->renderAll();
  if (!ContentHash)
    ContentHash = hashBytes(Source.data(), Source.size());
  return link::buildSummary(*U.Inf, U.SM, Name, ContentHash,
                            link::summaryConfigHash());
}

/// One comparable key per position: "fn#param#depth declared class".
std::string posKey(const std::string &Fn, int ParamIndex, unsigned Depth,
                   bool Declared, constinf::PosClass Class) {
  return Fn + "#" + std::to_string(ParamIndex) + "#" +
         std::to_string(Depth) + (Declared ? " declared " : " ") +
         std::to_string(static_cast<int>(Class));
}

/// Whole-program inference over the concatenation, as sorted position keys.
std::vector<std::string>
wholeProgramKeys(const std::vector<std::string> &Sources,
                 constinf::ConstCounts *Counts = nullptr) {
  Unit U;
  EXPECT_TRUE(U.analyze(Sources, /*SummaryMode=*/false))
      << U.Diags->renderAll();
  std::vector<std::string> Keys;
  for (const constinf::InterestingPos &P : U.Inf->positions())
    Keys.push_back(posKey(std::string(P.Fn->getName()), P.ParamIndex,
                          P.Depth, P.DeclaredConst, U.Inf->classify(P)));
  std::sort(Keys.begin(), Keys.end());
  if (Counts)
    *Counts = U.Inf->counts();
  return Keys;
}

/// Linked positions as sorted keys.
std::vector<std::string> linkedKeys(const link::LinkResult &R) {
  std::vector<std::string> Keys;
  for (const link::LinkedPos &P : R.Positions)
    Keys.push_back(
        posKey(P.FnName, P.ParamIndex, P.Depth, P.DeclaredConst, P.Class));
  std::sort(Keys.begin(), Keys.end());
  return Keys;
}

const char *kWriterTu =
    "int helper(int *p, int n);\n"
    "int use(int *q, int n) { *q = n; return helper(q, n); }\n";

const char *kReaderHelperTu = "int helper(int *p, int n) { return *p; }\n";

const char *kWriterHelperTu = "int helper(int *p, int n) { *p = n; return 0; }\n";

TEST(Qsum, RoundTripIsSerializerFixedPoint) {
  link::TuSummary S = summarize("rt.c", kWriterTu);
  std::string Bytes = link::serializeSummary(S);

  link::TuSummary Back;
  std::string Error;
  ASSERT_TRUE(link::deserializeSummary(
      reinterpret_cast<const uint8_t *>(Bytes.data()), Bytes.size(), Back,
      Error))
      << Error;
  EXPECT_EQ(S.ContentHash, Back.ContentHash);
  EXPECT_EQ(S.ConfigHash, Back.ConfigHash);
  EXPECT_EQ(S.NumVars, Back.NumVars);
  EXPECT_EQ(S.Constraints.size(), Back.Constraints.size());
  EXPECT_EQ(S.Positions.size(), Back.Positions.size());
  EXPECT_EQ(S.FnExports.size(), Back.FnExports.size());
  EXPECT_EQ(S.FnImports.size(), Back.FnImports.size());
  EXPECT_EQ("rt.c", Back.sourceName());
  EXPECT_EQ(Bytes, link::serializeSummary(Back));
}

TEST(Qsum, HeaderProbeAndStaleRejection) {
  link::TuSummary S = summarize("hdr.c", kWriterTu, /*ContentHash=*/77);
  std::string Bytes = link::serializeSummary(S);

  link::QsumHeader H;
  std::string Error;
  ASSERT_TRUE(link::readSummaryHeader(
      reinterpret_cast<const uint8_t *>(Bytes.data()), Bytes.size(), H,
      Error));
  EXPECT_EQ(link::kSummaryFormatVersion, H.FormatVersion);
  EXPECT_EQ(77u, H.ContentHash);
  EXPECT_EQ(link::summaryConfigHash(), H.ConfigHash);

  // A foreign format version is stale, not garbage: the diagnostic says so.
  std::string Stale = Bytes;
  Stale[4] = char(Stale[4] + 1);
  link::TuSummary Out;
  EXPECT_FALSE(link::deserializeSummary(
      reinterpret_cast<const uint8_t *>(Stale.data()), Stale.size(), Out,
      Error));
  EXPECT_NE(std::string::npos, Error.find("stale")) << Error;

  // Bad magic and truncation are rejected with diagnostics too.
  std::string Garbage = "not a summary";
  EXPECT_FALSE(link::deserializeSummary(
      reinterpret_cast<const uint8_t *>(Garbage.data()), Garbage.size(), Out,
      Error));
  EXPECT_FALSE(Error.empty());
  for (size_t Len = 0; Len < Bytes.size(); Len += 7)
    EXPECT_FALSE(link::deserializeSummary(
        reinterpret_cast<const uint8_t *>(Bytes.data()), Len, Out, Error));
}

TEST(Qsum, CacheKeyAndFileName) {
  uint64_t K1 = link::summaryCacheKey(1, 2);
  uint64_t K2 = link::summaryCacheKey(1, 3);
  uint64_t K3 = link::summaryCacheKey(2, 2);
  EXPECT_NE(K1, K2);
  EXPECT_NE(K1, K3);
  std::string Name = link::summaryFileName(K1);
  EXPECT_EQ(21u, Name.size());
  EXPECT_EQ(".qsum", Name.substr(16));
}

TEST(SummaryBuilder, PrunesPrivateConstraintComponents) {
  // A static function with purely local pointer plumbing: its constraint
  // component is invisible to other TUs and must be pruned, while the
  // exported writer's interface stays.
  std::string Source =
      "static int local(int n) { int a = n; int *p = &a; *p = 2; int *q = p;"
      " return *q; }\n"
      "int exported(int *p, int n) { *p = n; return local(n); }\n";
  link::TuSummary S = summarize("prune.c", Source);

  Unit U;
  ASSERT_TRUE(U.analyze({Source}, /*SummaryMode=*/true));
  EXPECT_LT(S.NumVars, U.Inf->numQualVars());

  // Only the non-static function is an export, and its interface variables
  // all survived the renumbering.
  ASSERT_EQ(1u, S.FnExports.size());
  EXPECT_EQ("exported", S.str(S.FnExports[0].Name));
  for (uint32_t V : S.FnExports[0].Vars)
    EXPECT_LT(V, S.NumVars);
}

TEST(Linker, CanonicalizationIsOrderAndDuplicateInvariant) {
  link::TuSummary A = summarize("a.c", kWriterTu);
  link::TuSummary B = summarize("b.c", kReaderHelperTu);

  link::LinkOptions Opts;
  std::vector<link::TuSummary> Fwd = {A, B};
  std::vector<link::TuSummary> Rev = {B, A};
  std::vector<link::TuSummary> Dup = {B, A, A};
  link::LinkResult R1 = link::linkSummaries(Fwd, Opts);
  link::LinkResult R2 = link::linkSummaries(Rev, Opts);
  link::LinkResult R3 = link::linkSummaries(Dup, Opts);

  ASSERT_TRUE(R1.LoadOk && R1.LinkOk && R1.SolveOk);
  EXPECT_EQ(linkedKeys(R1), linkedKeys(R2));
  EXPECT_EQ(R1.NumConstraints, R2.NumConstraints);
  // The duplicate content hash is dropped before linking.
  EXPECT_EQ(2u, R3.NumSummaries);
  EXPECT_EQ(3u, R3.NumInputs);
  EXPECT_EQ(linkedKeys(R1), linkedKeys(R3));
}

TEST(Linker, SplitMatchesWholeProgram) {
  // The equivalence contract, helper defined in another TU as a reader:
  // use()'s parameter must classify exactly as in the concatenation
  // (possible-const -- the import's withheld library pin is dropped).
  std::vector<std::string> Sources = {kWriterTu, kReaderHelperTu};
  constinf::ConstCounts Whole;
  std::vector<std::string> WholeKeys = wholeProgramKeys(Sources, &Whole);

  link::TuSummary A = summarize("tu0.c", Sources[0]);
  link::TuSummary B = summarize("tu1.c", Sources[1]);
  std::vector<link::TuSummary> Sums = {A, B};
  link::LinkOptions Opts;
  link::LinkResult R = link::linkSummaries(Sums, Opts);
  ASSERT_TRUE(R.LoadOk && R.LinkOk && R.SolveOk);

  EXPECT_EQ(WholeKeys, linkedKeys(R));
  EXPECT_EQ(Whole.Declared, R.Counts.Declared);
  EXPECT_EQ(Whole.PossibleConst, R.Counts.PossibleConst);
  EXPECT_EQ(Whole.Total, R.Counts.Total);
}

TEST(Linker, WriterCalleePinsAcrossTus) {
  // Same split with a writing helper: the write flows back through the
  // unified interface and pins use()'s parameter non-const in both worlds.
  std::vector<std::string> Sources = {kWriterTu, kWriterHelperTu};
  std::vector<std::string> WholeKeys = wholeProgramKeys(Sources);

  link::TuSummary A = summarize("tu0.c", Sources[0]);
  link::TuSummary B = summarize("tu1.c", Sources[1]);
  std::vector<link::TuSummary> Sums = {A, B};
  link::LinkOptions Opts;
  link::LinkResult R = link::linkSummaries(Sums, Opts);
  ASSERT_TRUE(R.LoadOk && R.LinkOk && R.SolveOk);
  EXPECT_EQ(WholeKeys, linkedKeys(R));

  bool SawNonConstHelperParam = false;
  for (const link::LinkedPos &P : R.Positions)
    if (P.FnName == "helper" && P.ParamIndex == 0)
      SawNonConstHelperParam =
          P.Class == constinf::PosClass::MustNonConst;
  EXPECT_TRUE(SawNonConstHelperParam);
}

TEST(Linker, UnresolvedImportAppliesWithheldPins) {
  // Linking the importer alone: helper stays undefined, so the deferred
  // Section 4.2 pin applies and helper's parameter is non-const, exactly
  // as whole-program inference treats an undefined library function.
  std::vector<std::string> WholeKeys = wholeProgramKeys({kWriterTu});

  link::TuSummary A = summarize("tu0.c", kWriterTu);
  std::vector<link::TuSummary> Sums = {A};
  link::LinkOptions Opts;
  link::LinkResult R = link::linkSummaries(Sums, Opts);
  ASSERT_TRUE(R.LoadOk && R.LinkOk && R.SolveOk);
  EXPECT_EQ(WholeKeys, linkedKeys(R));
}

TEST(Linker, DuplicateDefinitionDiagnosed) {
  link::TuSummary A = summarize("dup0.c", kWriterHelperTu, 1);
  link::TuSummary B = summarize("dup1.c", kWriterHelperTu, 2);
  std::vector<link::TuSummary> Sums = {A, B};
  link::LinkOptions Opts;
  link::LinkResult R = link::linkSummaries(Sums, Opts);
  EXPECT_TRUE(R.LoadOk);
  EXPECT_FALSE(R.LinkOk);
  ASSERT_FALSE(R.Diagnostics.empty());
  EXPECT_NE(std::string::npos, R.Diagnostics[0].find("duplicate"))
      << R.Diagnostics[0];
  EXPECT_NE(std::string::npos, R.Diagnostics[0].find("helper"))
      << R.Diagnostics[0];
}

TEST(Linker, InterfaceShapeMismatchDiagnosed) {
  // One TU believes helper takes (int*, int); the defining TU says
  // (int*, int*, int). Arity is part of the shape, so the link fails
  // loudly instead of mis-unifying variables.
  link::TuSummary A = summarize("shape0.c", kWriterTu);
  link::TuSummary B = summarize(
      "shape1.c", "int helper(int *p, int *q, int n) { return *p + *q; }\n");
  std::vector<link::TuSummary> Sums = {A, B};
  link::LinkOptions Opts;
  link::LinkResult R = link::linkSummaries(Sums, Opts);
  EXPECT_FALSE(R.LinkOk);
  ASSERT_FALSE(R.Diagnostics.empty());
  EXPECT_NE(std::string::npos, R.Diagnostics[0].find("helper"))
      << R.Diagnostics[0];
}

TEST(Linker, ConfigHashMismatchRejected) {
  link::TuSummary A = summarize("cfg0.c", kWriterTu);
  link::TuSummary B = summarize("cfg1.c", kReaderHelperTu);
  B.ConfigHash ^= 0xdead;
  std::vector<link::TuSummary> Sums = {A, B};
  link::LinkOptions Opts;
  link::LinkResult R = link::linkSummaries(Sums, Opts);
  EXPECT_FALSE(R.LoadOk);
  ASSERT_FALSE(R.Diagnostics.empty());
}

TEST(Linker, ConstraintBudgetIsLoadFailure) {
  link::TuSummary A = summarize("budget.c", kWriterTu);
  std::vector<link::TuSummary> Sums = {A};
  link::LinkOptions Opts;
  Opts.MaxConstraints = 1;
  link::LinkResult R = link::linkSummaries(Sums, Opts);
  EXPECT_FALSE(R.LoadOk);
  ASSERT_FALSE(R.Diagnostics.empty());
}

TEST(Linker, StatsAreDeterministic) {
  link::TuSummary A = summarize("det0.c", kWriterTu);
  link::TuSummary B = summarize("det1.c", kReaderHelperTu);
  std::vector<link::TuSummary> S1 = {A, B};
  std::vector<link::TuSummary> S2 = {B, A};
  link::LinkOptions Opts;
  link::LinkResult R1 = link::linkSummaries(S1, Opts);
  link::LinkResult R2 = link::linkSummaries(S2, Opts);
  ASSERT_TRUE(R1.SolveOk && R2.SolveOk);
  EXPECT_EQ(0.0, R1.Stats.SolveSeconds);
  EXPECT_EQ(renderSolverStats(R1.Stats), renderSolverStats(R2.Stats));
}

} // namespace

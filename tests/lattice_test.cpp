//===- tests/lattice_test.cpp - Qualifier lattice unit tests --------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests Definitions 1 and 2: positive/negative qualifiers, the two-point
/// component lattices, the product lattice, and the Figure 2 example lattice
/// over {const, dynamic, nonzero}.
///
//===----------------------------------------------------------------------===//

#include "qual/Qualifier.h"

#include <gtest/gtest.h>

using namespace quals;

namespace {

/// The paper's Figure 2 lattice: positive const and dynamic, negative
/// nonzero.
class Fig2Lattice : public ::testing::Test {
protected:
  QualifierSet QS;
  QualifierId Const, Dynamic, Nonzero;

  void SetUp() override {
    Const = QS.add("const", Polarity::Positive);
    Dynamic = QS.add("dynamic", Polarity::Positive);
    Nonzero = QS.add("nonzero", Polarity::Negative);
  }
};

TEST_F(Fig2Lattice, BottomHasNegativeQualifiersPresent) {
  LatticeValue Bot = QS.bottom();
  EXPECT_FALSE(QS.contains(Bot, Const));
  EXPECT_FALSE(QS.contains(Bot, Dynamic));
  EXPECT_TRUE(QS.contains(Bot, Nonzero)); // negative: present at bottom
}

TEST_F(Fig2Lattice, TopHasPositiveQualifiersPresent) {
  LatticeValue Top = QS.top();
  EXPECT_TRUE(QS.contains(Top, Const));
  EXPECT_TRUE(QS.contains(Top, Dynamic));
  EXPECT_FALSE(QS.contains(Top, Nonzero)); // negative: absent at top
}

TEST_F(Fig2Lattice, MovingUpAddsPositiveRemovesNegative) {
  // "Notice that moving up the lattice adds positive qualifiers or removes
  // negative qualifiers."
  LatticeValue V = QS.bottom();
  LatticeValue WithConst = QS.withQual(V, Const);
  EXPECT_TRUE(V.subsumedBy(WithConst));
  LatticeValue NoNonzero = QS.withoutQual(V, Nonzero);
  EXPECT_TRUE(V.subsumedBy(NoNonzero));
}

TEST_F(Fig2Lattice, JoinAndMeetAreComponentwise) {
  LatticeValue A = QS.withQual(QS.bottom(), Const);
  LatticeValue B = QS.withQual(QS.bottom(), Dynamic);
  LatticeValue J = A.join(B);
  EXPECT_TRUE(QS.contains(J, Const));
  EXPECT_TRUE(QS.contains(J, Dynamic));
  LatticeValue M = A.meet(B);
  EXPECT_FALSE(QS.contains(M, Const));
  EXPECT_FALSE(QS.contains(M, Dynamic));
}

TEST_F(Fig2Lattice, PartialOrderIsReflexiveAntisymmetricTransitive) {
  LatticeValue A = QS.withQual(QS.bottom(), Const);
  LatticeValue B = QS.withQual(A, Dynamic);
  LatticeValue C = QS.withoutQual(B, Nonzero);
  EXPECT_TRUE(A.subsumedBy(A));
  EXPECT_TRUE(A.subsumedBy(B));
  EXPECT_FALSE(B.subsumedBy(A));
  EXPECT_TRUE(A.subsumedBy(B) && B.subsumedBy(C) && A.subsumedBy(C));
}

TEST_F(Fig2Lattice, IncomparableElements) {
  LatticeValue OnlyConst = QS.withQual(QS.bottom(), Const);
  LatticeValue OnlyDynamic = QS.withQual(QS.bottom(), Dynamic);
  EXPECT_FALSE(OnlyConst.subsumedBy(OnlyDynamic));
  EXPECT_FALSE(OnlyDynamic.subsumedBy(OnlyConst));
}

TEST_F(Fig2Lattice, NotQualIsTopWithoutTheQualifier) {
  // ":const" = top except const absent -- the Assign' upper bound.
  LatticeValue NotConst = QS.notQual(Const);
  EXPECT_FALSE(QS.contains(NotConst, Const));
  EXPECT_TRUE(QS.contains(NotConst, Dynamic));
  EXPECT_FALSE(QS.contains(NotConst, Nonzero));
  // Everything without const fits under it; anything with const does not.
  EXPECT_TRUE(QS.withQual(QS.bottom(), Dynamic).subsumedBy(NotConst));
  EXPECT_FALSE(QS.withQual(QS.bottom(), Const).subsumedBy(NotConst));
}

TEST_F(Fig2Lattice, NotQualForNegativeQualifier) {
  // ":nonzero" = top with nonzero *present* (since present = bit clear);
  // an int that must stay nonzero cannot be subsumed by it... rather, a
  // nonzero value always fits under :nonzero's complement structure:
  LatticeValue NotNonzero = QS.notQual(Nonzero);
  EXPECT_FALSE(QS.contains(NotNonzero, Nonzero));
  // Bottom (nonzero present) is NOT below top-with-nonzero-absent restricted
  // to the nonzero component... but bottom is below everything in a powerset
  // encoding, so check the component through contains() instead:
  EXPECT_TRUE(QS.contains(QS.bottom(), Nonzero));
}

TEST_F(Fig2Lattice, ValueWithPresentBuildsAnnotationElements) {
  LatticeValue V = QS.valueWithPresent({Const, Nonzero});
  EXPECT_TRUE(QS.contains(V, Const));
  EXPECT_TRUE(QS.contains(V, Nonzero));
  EXPECT_FALSE(QS.contains(V, Dynamic));
}

TEST_F(Fig2Lattice, ToStringListsPresentQualifiers) {
  EXPECT_EQ(QS.toString(QS.valueWithPresent({Const})), "const nonzero");
  EXPECT_EQ(QS.toString(QS.withoutQual(QS.valueWithPresent({Const}),
                                       Nonzero)),
            "const");
  EXPECT_EQ(QS.toString(QS.withoutQual(QS.bottom(), Nonzero)), "");
}

TEST_F(Fig2Lattice, LookupFindsRegisteredQualifiers) {
  QualifierId Id;
  EXPECT_TRUE(QS.lookup("dynamic", Id));
  EXPECT_EQ(Id, Dynamic);
  EXPECT_FALSE(QS.lookup("sorted", Id));
}

TEST(QualifierSet, EightPointLatticeHasExpectedSize) {
  // Figure 2's lattice has 2^3 = 8 elements; enumerate via bitmasks.
  QualifierSet QS;
  QS.add("const", Polarity::Positive);
  QS.add("dynamic", Polarity::Positive);
  QS.add("nonzero", Polarity::Negative);
  EXPECT_EQ(QS.usedBits(), 0b111u);
  // Chain bottom -> top has length 4 (3 steps).
  LatticeValue V = QS.bottom();
  int Steps = 0;
  for (unsigned I = 0; I != 3; ++I) {
    LatticeValue Next(V.bits() | (uint64_t(1) << I));
    EXPECT_TRUE(V.subsumedBy(Next));
    V = Next;
    ++Steps;
  }
  EXPECT_EQ(Steps, 3);
  EXPECT_EQ(V, QS.top());
}

TEST(QualifierSet, SingleNegativeQualifierDuality) {
  // With one negative qualifier q: q tau <= tau means bottom (q present)
  // is below top (q absent).
  QualifierSet QS;
  QualifierId Q = QS.add("nonnull", Polarity::Negative);
  EXPECT_TRUE(QS.contains(QS.bottom(), Q));
  EXPECT_FALSE(QS.contains(QS.top(), Q));
  EXPECT_TRUE(QS.bottom().subsumedBy(QS.top()));
}

} // namespace

//===- tests/apps_test.cpp - Qualifier application tests ------------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the non-const qualifier systems built on the framework:
/// binding-time analysis (static/dynamic with the well-formedness rule),
/// taint tracking, and the C nonnull checker -- the applications Sections 1
/// and 5 cite as motivation.
///
//===----------------------------------------------------------------------===//

#include "apps/BindingTime.h"
#include "apps/NonNull.h"
#include "apps/Taint.h"
#include "cfront/CParser.h"
#include "cfront/CSema.h"

#include <gtest/gtest.h>

using namespace quals;
using namespace quals::apps;

namespace {

//===----------------------------------------------------------------------===//
// Binding-time analysis
//===----------------------------------------------------------------------===//

TEST(BindingTimeTest, UnannotatedProgramIsStatic) {
  BindingTimeAnalysis BTA;
  ASSERT_TRUE(BTA.analyze("let x = 3 in x ni")) << BTA.errors();
  EXPECT_NE(BTA.resultTime(), BindingTime::Dynamic);
}

TEST(BindingTimeTest, DynamicInputForcesDynamicResult) {
  BindingTimeAnalysis BTA;
  ASSERT_TRUE(BTA.analyze(
      "let input = {dynamic} 0 in (fn x. x) input ni"))
      << BTA.errors();
  EXPECT_EQ(BTA.resultTime(), BindingTime::Dynamic);
}

TEST(BindingTimeTest, StaticComputationStaysStaticBesideDynamic) {
  // Only the dynamic half infects its consumers.
  BindingTimeAnalysis BTA;
  ASSERT_TRUE(BTA.analyze(
      "let input = {dynamic} 0 in"
      " let table = 42 in"
      "  table"
      " ni ni"))
      << BTA.errors();
  EXPECT_NE(BTA.resultTime(), BindingTime::Dynamic);
}

TEST(BindingTimeTest, WellFormednessLiftsDynamicOutOfComponents) {
  // A function whose parameter is dynamic cannot itself be static: assert
  // it static and watch the well-formedness rule fire.
  BindingTimeAnalysis BTA;
  EXPECT_FALSE(BTA.analyze(
      "let f = (fn x. x) in"
      " let g = f |{~dynamic} in"
      "  g ({dynamic} 1)"
      " ni ni"));
  EXPECT_NE(BTA.errors().find("dynamic"), std::string::npos);
}

TEST(BindingTimeTest, AssertedStaticSinkRejectsDynamicValue) {
  BindingTimeAnalysis BTA;
  EXPECT_FALSE(BTA.analyze("({dynamic} 3) |{~dynamic}"));
}

TEST(BindingTimeTest, PolymorphicHelperServesBothTimes) {
  // id applied to static and dynamic data: the static use stays static.
  BindingTimeAnalysis BTA;
  ASSERT_TRUE(BTA.analyze(
      "let id = fn x. x in"
      " let s = (id 1) |{~dynamic} in"
      "  let d = id ({dynamic} 2) in"
      "   s"
      "  ni ni ni"))
      << BTA.errors();
}

//===----------------------------------------------------------------------===//
// Taint tracking
//===----------------------------------------------------------------------===//

TEST(TaintTest, CleanProgramHasNoLeaks) {
  TaintAnalysis TA;
  EXPECT_TRUE(TA.analyze("let x = 1 in (x |{~tainted}) ni"))
      << TA.errors();
}

TEST(TaintTest, DirectFlowToSinkReported) {
  TaintAnalysis TA;
  EXPECT_FALSE(TA.analyze(
      "let user_input = {tainted} 7 in (user_input |{~tainted}) ni"));
  ASSERT_EQ(TA.leaks().size(), 1u);
  EXPECT_NE(TA.leaks()[0].find("tainted"), std::string::npos);
}

TEST(TaintTest, FlowThroughFunctionsAndRefs) {
  TaintAnalysis TA;
  EXPECT_FALSE(TA.analyze(
      "let box = ref 0 in"
      " let s = box := ({tainted} 9) in"
      "  ((!box) |{~tainted})"
      " ni ni"));
  EXPECT_EQ(TA.leaks().size(), 1u);
}

TEST(TaintTest, UntaintedBranchDoesNotLeak) {
  TaintAnalysis TA;
  EXPECT_TRUE(TA.analyze(
      "let clean = 3 in"
      " let dirty = {tainted} 4 in"
      "  (clean |{~tainted})"
      " ni ni"))
      << TA.errors();
}

TEST(TaintTest, JoinOfBranchesCarriesTaint) {
  TaintAnalysis TA;
  EXPECT_FALSE(TA.analyze(
      "((if 1 then {tainted} 2 else 3 fi) |{~tainted})"));
}

TEST(TaintTest, MayBeTaintedQueries) {
  TaintAnalysis TA;
  ASSERT_TRUE(TA.analyze("let d = {tainted} 5 in d ni")) << TA.errors();
  EXPECT_TRUE(TA.mayBeTainted(TA.program()));
}

//===----------------------------------------------------------------------===//
// NonNull checking for C
//===----------------------------------------------------------------------===//

struct NullRig {
  SourceManager SM;
  DiagnosticEngine Diags{SM};
  cfront::CAstContext Ast;
  cfront::CTypeContext Types;
  StringInterner Idents;
  cfront::TranslationUnit TU;
  NonNullChecker Checker;

  bool analyze(const std::string &Source) {
    if (!cfront::parseCSource(SM, "null.c", Source, Ast, Types, Idents,
                              Diags, TU))
      return false;
    cfront::CSema Sema(Ast, Types, Idents, Diags);
    if (!Sema.analyze(TU))
      return false;
    return Checker.analyze(TU);
  }
};

TEST(NonNullTest, CleanPointerUseNoWarnings) {
  NullRig R;
  EXPECT_TRUE(R.analyze(
      "int f(void) { int x; int *p; p = &x; return *p; }"));
  EXPECT_TRUE(R.Checker.warnings().empty());
}

TEST(NonNullTest, NullAssignedThenDereferencedWarns) {
  NullRig R;
  EXPECT_FALSE(R.analyze(
      "int f(void) { int *p; p = 0; return *p; }"));
  ASSERT_EQ(R.Checker.warnings().size(), 1u);
  EXPECT_NE(R.Checker.warnings()[0].Message.find("may be null"),
            std::string::npos);
}

TEST(NonNullTest, NullInitializerWarnsOnArrow) {
  NullRig R;
  EXPECT_FALSE(R.analyze(
      "struct s { int v; };\n"
      "int f(void) { struct s *p = 0; return p->v; }"));
  EXPECT_EQ(R.Checker.warnings().size(), 1u);
}

TEST(NonNullTest, NullnessPropagatesThroughAssignments) {
  NullRig R;
  EXPECT_FALSE(R.analyze(
      "int f(void) { int *a; int *b; a = 0; b = a; return *b; }"));
  EXPECT_EQ(R.Checker.warnings().size(), 1u);
}

TEST(NonNullTest, SubscriptOfMaybeNullWarns) {
  NullRig R;
  EXPECT_FALSE(R.analyze(
      "int f(void) { int *v; v = 0; return v[3]; }"));
  EXPECT_EQ(R.Checker.warnings().size(), 1u);
}

TEST(NonNullTest, UnrelatedNullDoesNotTaintOthers) {
  NullRig R;
  EXPECT_TRUE(R.analyze(
      "int f(void) { int x; int *dead; int *live; dead = 0; live = &x; "
      "return *live; }"));
}

TEST(NonNullTest, MayBeNullQuery) {
  NullRig R;
  EXPECT_FALSE(R.analyze(
      "int g; int *p; int f(void) { p = 0; return *p; }"));
  ASSERT_FALSE(R.TU.GlobalMap.empty());
  EXPECT_TRUE(R.Checker.mayBeNull(R.TU.GlobalMap.at("p")));
}

} // namespace

//===- tests/misc_test.cpp - Cross-cutting odds and ends ------------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A masked lower/upper solver oracle (property test against a naive
/// fixpoint), diagnostics rendering, solved-type printing, and the small
/// support pieces not covered elsewhere.
///
//===----------------------------------------------------------------------===//

#include "qual/ConstraintSystem.h"
#include "qual/QualType.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

using namespace quals;

namespace {

//===----------------------------------------------------------------------===//
// Masked solver oracle
//===----------------------------------------------------------------------===//

/// Naive reference implementation of the masked constraint semantics:
/// lower[t] |= lower[s] & mask, upper[s] &= upper[t] | ~mask, to fixpoint.
struct NaiveSolver {
  struct Edge {
    int From, To;
    uint64_t Mask;
  };
  unsigned NumVars;
  uint64_t UsedBits;
  std::vector<Edge> Edges;
  std::vector<std::pair<int, uint64_t>> LowerSeeds; // var, bits(masked)
  std::vector<std::pair<int, uint64_t>> UpperSeeds; // var, cap
  std::vector<uint64_t> Lower, Upper;

  void solve() {
    Lower.assign(NumVars, 0);
    Upper.assign(NumVars, UsedBits);
    for (auto &S : LowerSeeds)
      Lower[S.first] |= S.second;
    for (auto &S : UpperSeeds)
      Upper[S.first] &= S.second;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (const Edge &E : Edges) {
        uint64_t NewL = Lower[E.To] | (Lower[E.From] & E.Mask);
        if (NewL != Lower[E.To]) {
          Lower[E.To] = NewL;
          Changed = true;
        }
        uint64_t NewU = Upper[E.From] & (Upper[E.To] | ~E.Mask);
        if (NewU != Upper[E.From]) {
          Upper[E.From] = NewU;
          Changed = true;
        }
      }
    }
  }
};

class MaskedOracle : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MaskedOracle, SolverMatchesNaiveFixpoint) {
  QualifierSet QS;
  QS.add("a", Polarity::Positive);
  QS.add("b", Polarity::Positive);
  QS.add("c", Polarity::Negative);
  QS.add("d", Polarity::Positive);
  const uint64_t Used = QS.usedBits();

  uint64_t State = GetParam() * 0x9E3779B97F4A7C15ULL + 1;
  auto Rand = [&State]() {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    return State;
  };

  constexpr unsigned N = 60;
  ConstraintSystem Sys(QS);
  NaiveSolver Naive;
  Naive.NumVars = N;
  Naive.UsedBits = Used;
  std::vector<QualVarId> Vars;
  for (unsigned I = 0; I != N; ++I)
    Vars.push_back(Sys.freshVar("v" + std::to_string(I)));

  for (unsigned I = 0; I != 250; ++I) {
    unsigned A = Rand() % N, B = Rand() % N;
    uint64_t Mask = Rand() & Used;
    if (!Mask)
      Mask = Used;
    unsigned Kind = Rand() % 4;
    if (Kind == 0) { // const <= var
      uint64_t Bits = Rand() & Used;
      Sys.addLeqMasked(QualExpr::makeConst(LatticeValue(Bits)),
                       QualExpr::makeVar(Vars[A]), Mask, {"seed"});
      Naive.LowerSeeds.push_back({static_cast<int>(A), Bits & Mask});
    } else if (Kind == 1) { // var <= const
      uint64_t Bits = Rand() & Used;
      Sys.addLeqMasked(QualExpr::makeVar(Vars[A]),
                       QualExpr::makeConst(LatticeValue(Bits)), Mask,
                       {"cap"});
      Naive.UpperSeeds.push_back(
          {static_cast<int>(A), (Bits | ~Mask) & Used});
    } else { // var <= var (twice as likely)
      Sys.addLeqMasked(QualExpr::makeVar(Vars[A]),
                       QualExpr::makeVar(Vars[B]), Mask, {"edge"});
      Naive.Edges.push_back(
          {static_cast<int>(A), static_cast<int>(B), Mask});
    }
    // Interleave solves to exercise the incremental path.
    if (I % 50 == 49)
      Sys.solve();
  }
  Sys.solve();
  Naive.solve();

  for (unsigned I = 0; I != N; ++I) {
    EXPECT_EQ(Sys.lower(Vars[I]).bits(), Naive.Lower[I]) << "lower " << I;
    EXPECT_EQ(Sys.upper(Vars[I]).bits() & Used, Naive.Upper[I])
        << "upper " << I;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaskedOracle,
                         ::testing::Range<uint64_t>(1, 13));

//===----------------------------------------------------------------------===//
// Diagnostics rendering
//===----------------------------------------------------------------------===//

TEST(DiagnosticsRender, PointsAtTheOffendingColumn) {
  SourceManager SM;
  unsigned Id = SM.addBuffer("d.c", "int x;\nint $bad;\n");
  DiagnosticEngine Diags(SM);
  Diags.error(SM.getLocForOffset(Id, 11), "unexpected character");
  std::string Out = Diags.renderAll();
  EXPECT_NE(Out.find("d.c:2:5: error: unexpected character"),
            std::string::npos)
      << Out;
  // Caret under column 5.
  EXPECT_NE(Out.find("int $bad;\n    ^"), std::string::npos) << Out;
}

TEST(DiagnosticsRender, SeveritiesAndCounts) {
  SourceManager SM;
  DiagnosticEngine Diags(SM);
  Diags.warning(SourceLoc(), "heads up");
  Diags.note(SourceLoc(), "context");
  EXPECT_FALSE(Diags.hasErrors());
  Diags.error(SourceLoc(), "boom");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.getNumErrors(), 1u);
  std::string Out = Diags.renderAll();
  EXPECT_NE(Out.find("warning: heads up"), std::string::npos);
  EXPECT_NE(Out.find("note: context"), std::string::npos);
  EXPECT_NE(Out.find("error: boom"), std::string::npos);
  Diags.clear();
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_TRUE(Diags.renderAll().empty());
}

//===----------------------------------------------------------------------===//
// Solved-type printing
//===----------------------------------------------------------------------===//

TEST(TypePrinting, SolvedVariablesPrintTheirLeastSolution) {
  QualifierSet QS;
  QualifierId Const = QS.add("const", Polarity::Positive);
  ConstraintSystem Sys(QS);
  QualTypeFactory Factory;
  TypeCtor Int("int", {});
  TypeCtor Ref("ref", {Variance::Invariant});

  QualVarId K = Sys.freshVar("k");
  Sys.addLeq(QualExpr::makeConst(QS.valueWithPresent({Const})),
             QualExpr::makeVar(K), {"decl"});
  QualType T = Factory.make(
      QualExpr::makeConst(QS.bottom()), &Ref,
      {Factory.make(QualExpr::makeVar(K), &Int)});
  Sys.solve();
  EXPECT_EQ(toString(QS, T, &Sys), "ref(const int)");
  // Unsolved printing shows variable ids instead.
  EXPECT_EQ(toString(QS, T), "ref($0 int)");
}

//===----------------------------------------------------------------------===//
// Support odds and ends
//===----------------------------------------------------------------------===//

TEST(TimerTest, MeasuresElapsedTime) {
  Timer T;
  volatile unsigned Sink = 0;
  for (unsigned I = 0; I != 2000000; ++I)
    Sink = Sink + I;
  double S = T.seconds();
  EXPECT_GT(S, 0.0);
  EXPECT_EQ(T.milliseconds() >= S * 1000.0 * 0.5, true);
  T.reset();
  EXPECT_LT(T.seconds(), S + 1.0);
}

TEST(QualifierSetLimits, SupportsManyQualifiers) {
  QualifierSet QS;
  std::vector<QualifierId> Ids;
  for (unsigned I = 0; I != 48; ++I)
    Ids.push_back(QS.add("q" + std::to_string(I),
                         I % 2 ? Polarity::Negative : Polarity::Positive));
  EXPECT_EQ(QS.size(), 48u);
  LatticeValue V = QS.bottom();
  for (QualifierId Id : Ids)
    V = QS.withQual(V, Id);
  for (QualifierId Id : Ids)
    EXPECT_TRUE(QS.contains(V, Id));
  // Solving still works with a wide lattice. A lower bound forces the
  // *positive* qualifiers present everywhere; the negative ones are only
  // "may be present" (their presence sits at the bottom of the component,
  // so only an upper bound could force it).
  ConstraintSystem Sys(QS);
  QualVarId A = Sys.freshVar("a"), B = Sys.freshVar("b");
  Sys.addLeq(QualExpr::makeConst(V), QualExpr::makeVar(A), {"all"});
  Sys.addLeq(QualExpr::makeVar(A), QualExpr::makeVar(B), {"edge"});
  ASSERT_TRUE(Sys.solve());
  for (unsigned I = 0; I != Ids.size(); ++I) {
    if (QS.get(Ids[I]).Pol == Polarity::Positive)
      EXPECT_TRUE(Sys.mustHave(B, Ids[I])) << I;
    else
      EXPECT_TRUE(Sys.mayHave(B, Ids[I])) << I;
  }
}

} // namespace

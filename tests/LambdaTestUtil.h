//===- tests/LambdaTestUtil.h - Shared lambda-language test rig -*- C++ -*-===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#ifndef QUALS_TESTS_LAMBDATESTUTIL_H
#define QUALS_TESTS_LAMBDATESTUTIL_H

#include "lambda/Eval.h"
#include "lambda/Parser.h"
#include "lambda/QualInfer.h"

#include <memory>
#include <string>

namespace quals {
namespace lambda {

/// Bundles every state object a lambda-language pipeline needs. One Rig per
/// program keeps tests independent.
struct Rig {
  QualifierSet QS;
  QualifierId Const, Nonzero, Dynamic, Tainted;
  SourceManager SM;
  DiagnosticEngine Diags{SM};
  AstContext Ast;
  StringInterner Idents;
  STyContext STys;
  ConstraintSystem Sys{QS};
  QualTypeFactory Factory;
  LambdaTypeCtors Ctors;

  Rig() {
    Const = QS.add("const", Polarity::Positive);
    Nonzero = QS.add("nonzero", Polarity::Negative);
    Dynamic = QS.add("dynamic", Polarity::Positive);
    Tainted = QS.add("tainted", Polarity::Positive);
  }

  const Expr *parse(const std::string &Source) {
    return parseString(SM, "test.q", Source, QS, Ast, Idents, Diags);
  }

  /// Parses and checks with const-rule enabled; Polymorphic per argument.
  CheckResult check(const std::string &Source, bool Polymorphic = true) {
    const Expr *E = parse(Source);
    if (!E)
      return CheckResult();
    QualInferOptions Options;
    Options.Polymorphic = Polymorphic;
    Options.ConstQual = Const;
    return checkProgram(E, QS, STys, Sys, Factory, Ctors, Diags, Options);
  }

  /// Parses and evaluates (no type checking).
  EvalResult run(const std::string &Source, unsigned MaxSteps = 100000) {
    const Expr *E = parse(Source);
    EvalResult R;
    if (!E)
      return R;
    Evaluator Ev(Ast, QS);
    return Ev.evaluate(E, MaxSteps);
  }
};

} // namespace lambda
} // namespace quals

#endif // QUALS_TESTS_LAMBDATESTUTIL_H

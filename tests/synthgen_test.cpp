//===- tests/synthgen_test.cpp - Synthetic benchmark generator tests ------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "cfront/CParser.h"
#include "cfront/CSema.h"
#include "constinf/ConstInfer.h"
#include "gen/SynthGen.h"

#include <gtest/gtest.h>

using namespace quals;
using namespace quals::cfront;
using namespace quals::constinf;
using namespace quals::synth;

namespace {

/// Runs the full pipeline over a generated program.
struct PipelineResult {
  bool ParseOk = false;
  bool SemaOk = false;
  bool InferOk = false;
  ConstCounts Counts;
  std::string Errors;
};

PipelineResult runPipeline(const SynthProgram &Prog, bool Polymorphic) {
  PipelineResult Result;
  SourceManager SM;
  DiagnosticEngine Diags(SM);
  CAstContext Ast;
  CTypeContext Types;
  StringInterner Idents;
  TranslationUnit TU;
  Result.ParseOk =
      parseCSource(SM, "gen.c", Prog.Source, Ast, Types, Idents, Diags, TU);
  if (!Result.ParseOk) {
    Result.Errors = Diags.renderAll();
    return Result;
  }
  CSema Sema(Ast, Types, Idents, Diags);
  Result.SemaOk = Sema.analyze(TU);
  if (!Result.SemaOk) {
    Result.Errors = Diags.renderAll();
    return Result;
  }
  ConstInference::Options Opts;
  Opts.Polymorphic = Polymorphic;
  ConstInference Inf(TU, Diags, Opts);
  Result.InferOk = Inf.run();
  if (!Result.InferOk)
    Result.Errors = Diags.renderAll();
  else
    Result.Counts = Inf.counts();
  return Result;
}

TEST(SynthGen, DeterministicForFixedSeed) {
  SynthParams P;
  P.Seed = 42;
  P.NumFunctions = 30;
  SynthProgram A = generateProgram(P);
  SynthProgram B = generateProgram(P);
  EXPECT_EQ(A.Source, B.Source);
  EXPECT_EQ(A.LineCount, B.LineCount);
}

TEST(SynthGen, DifferentSeedsDiffer) {
  SynthParams P;
  P.NumFunctions = 30;
  P.Seed = 1;
  SynthProgram A = generateProgram(P);
  P.Seed = 2;
  SynthProgram B = generateProgram(P);
  EXPECT_NE(A.Source, B.Source);
}

TEST(SynthGen, ParamsForLinesHitsTarget) {
  for (unsigned Target : {1496u, 5303u, 8741u}) {
    SynthParams P = paramsForLines(/*Seed=*/Target, Target);
    SynthProgram Prog = generateProgram(P);
    EXPECT_GT(Prog.LineCount, Target * 9 / 10) << "target " << Target;
    EXPECT_LT(Prog.LineCount, Target * 11 / 10) << "target " << Target;
  }
}

/// The central property: every generated program is a *correct* C program
/// (parses, type checks, and has consistent const constraints), matching
/// the paper's "all of our benchmarks are correct C programs".
class SynthPipeline : public ::testing::TestWithParam<unsigned> {};

TEST_P(SynthPipeline, GeneratedProgramIsAnalyzableMono) {
  SynthParams P;
  P.Seed = GetParam();
  P.NumFunctions = 40 + GetParam() * 7;
  SynthProgram Prog = generateProgram(P);
  PipelineResult R = runPipeline(Prog, /*Polymorphic=*/false);
  ASSERT_TRUE(R.ParseOk) << R.Errors;
  ASSERT_TRUE(R.SemaOk) << R.Errors;
  ASSERT_TRUE(R.InferOk) << R.Errors;
  EXPECT_GT(R.Counts.Total, 0u);
  EXPECT_GE(R.Counts.PossibleConst, R.Counts.Declared);
}

TEST_P(SynthPipeline, GeneratedProgramIsAnalyzablePoly) {
  SynthParams P;
  P.Seed = GetParam() * 1337 + 11;
  P.NumFunctions = 40 + GetParam() * 7;
  SynthProgram Prog = generateProgram(P);
  PipelineResult R = runPipeline(Prog, /*Polymorphic=*/true);
  ASSERT_TRUE(R.ParseOk) << R.Errors;
  ASSERT_TRUE(R.SemaOk) << R.Errors;
  ASSERT_TRUE(R.InferOk) << R.Errors;
}

TEST_P(SynthPipeline, PolyAllowsAtLeastAsManyConstsAsMono) {
  // The paper's central comparison: Poly >= Mono on every benchmark.
  SynthParams P;
  P.Seed = GetParam() * 7919 + 3;
  P.NumFunctions = 60;
  SynthProgram Prog = generateProgram(P);
  PipelineResult Mono = runPipeline(Prog, false);
  PipelineResult Poly = runPipeline(Prog, true);
  ASSERT_TRUE(Mono.InferOk) << Mono.Errors;
  ASSERT_TRUE(Poly.InferOk) << Poly.Errors;
  EXPECT_EQ(Mono.Counts.Total, Poly.Counts.Total);
  EXPECT_EQ(Mono.Counts.Declared, Poly.Counts.Declared);
  EXPECT_GE(Poly.Counts.PossibleConst, Mono.Counts.PossibleConst);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthPipeline,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(SynthGen, InferredExceedsDeclared) {
  // The headline claim: many more consts can be inferred than declared.
  SynthParams P;
  P.Seed = 99;
  P.NumFunctions = 120;
  SynthProgram Prog = generateProgram(P);
  PipelineResult R = runPipeline(Prog, false);
  ASSERT_TRUE(R.InferOk) << R.Errors;
  EXPECT_GT(R.Counts.PossibleConst, R.Counts.Declared);
}

} // namespace

//===- tests/incremental_test.cpp - Incremental re-analysis tests ---------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the analyze-delta stack bottom-up: cfront/AstHash (structural
/// hashing that ignores formatting), constinf/Summary (snapshot capture and
/// delta planning: dirtiness seeding, coupling closure, the structural
/// fallbacks), serve/SummaryStore (LRU), and the serve pipeline + Server
/// end-to-end. The load-bearing property everywhere is the determinism
/// contract of docs/INCREMENTAL.md: an analyze-delta response is
/// byte-identical to a cold analyze of the same content, on every path --
/// incremental success, every fallback reason, and every worker count.
///
//===----------------------------------------------------------------------===//

#include "cfront/AstHash.h"
#include "cfront/CParser.h"
#include "cfront/CSema.h"
#include "constinf/ConstInfer.h"
#include "constinf/Summary.h"
#include "serve/Pipelines.h"
#include "serve/Server.h"
#include "serve/SummaryStore.h"
#include "support/Hash.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

using namespace quals;
using namespace quals::cfront;
using namespace quals::constinf;
using namespace quals::serve;

namespace {

/// Parse + sema rig (no inference) for AstHash and planDelta tests.
struct ParseRig {
  SourceManager SM;
  DiagnosticEngine Diags{SM};
  CAstContext Ast;
  CTypeContext Types;
  StringInterner Idents;
  TranslationUnit TU;

  bool parse(const std::string &Source) {
    if (!parseCSource(SM, "test.c", Source, Ast, Types, Idents, Diags, TU))
      return false;
    CSema Sema(Ast, Types, Idents, Diags);
    return Sema.analyze(TU);
  }

  const FunctionDecl *fn(std::string_view Name) {
    for (const FunctionDecl *F : TU.Functions)
      if (F->getName() == Name)
        return F;
    return nullptr;
  }
};

uint64_t bodyHash(ParseRig &R, std::string_view Name) {
  const FunctionDecl *F = R.fn(Name);
  EXPECT_NE(F, nullptr) << Name;
  return F ? hashFunctionBody(F) : 0;
}

} // namespace

//===----------------------------------------------------------------------===//
// cfront/AstHash
//===----------------------------------------------------------------------===//

TEST(AstHash, FormattingInsensitive) {
  ParseRig A, B;
  ASSERT_TRUE(A.parse("int f(int *p) { return *p + 1; }\n"));
  ASSERT_TRUE(B.parse("int  f( int * p )\n{\n  return *p + 1 ;\n}\n"));
  EXPECT_EQ(bodyHash(A, "f"), bodyHash(B, "f"));
  EXPECT_EQ(hashFunctionSignature(A.fn("f")), hashFunctionSignature(B.fn("f")));
  EXPECT_EQ(hashDeclRegion(A.TU), hashDeclRegion(B.TU));
}

TEST(AstHash, BodyEditChangesOnlyThatFunction) {
  ParseRig A, B;
  ASSERT_TRUE(A.parse("int f(int *p) { return *p; }\n"
                      "int g(int *q) { return *q; }\n"));
  ASSERT_TRUE(B.parse("int f(int *p) { return *p; }\n"
                      "int g(int *q) { *q = 1; return *q; }\n"));
  EXPECT_EQ(bodyHash(A, "f"), bodyHash(B, "f"));
  EXPECT_NE(bodyHash(A, "g"), bodyHash(B, "g"));
}

TEST(AstHash, UndefinedFunctionHashesToZero) {
  ParseRig A;
  ASSERT_TRUE(A.parse("int lib(int *p);\nint f(int *p) { return lib(p); }\n"));
  EXPECT_EQ(hashFunctionBody(A.fn("lib")), 0u);
  EXPECT_NE(hashFunctionBody(A.fn("f")), 0u);
}

TEST(AstHash, DeclRegionSeesGlobalsAndSignatures) {
  ParseRig A, B, C;
  ASSERT_TRUE(A.parse("int f(int *p) { return *p; }\n"));
  ASSERT_TRUE(B.parse("int cell;\nint f(int *p) { return *p; }\n"));
  ASSERT_TRUE(C.parse("int f(int p) { return p; }\n"));
  EXPECT_NE(hashDeclRegion(A.TU), hashDeclRegion(B.TU));
  EXPECT_NE(hashDeclRegion(A.TU), hashDeclRegion(C.TU));
}

TEST(AstHash, RenamingALocalChangesTheBody) {
  // Local names feed diagnostics and prototypes, so they are part of the
  // structural identity -- not an over-approximation.
  ParseRig A, B;
  ASSERT_TRUE(A.parse("int f(void) { int x = 1; return x; }\n"));
  ASSERT_TRUE(B.parse("int f(void) { int y = 1; return y; }\n"));
  EXPECT_NE(bodyHash(A, "f"), bodyHash(B, "f"));
}

//===----------------------------------------------------------------------===//
// constinf/Summary: capture + planning
//===----------------------------------------------------------------------===//

namespace {

/// Runs full inference over \p Source and captures a snapshot.
std::shared_ptr<const UnitSnapshot> snapshotOf(const std::string &Source) {
  ParseRig R;
  if (!R.parse(Source))
    return nullptr;
  ConstInference Inf(R.TU, R.Diags, {});
  if (!Inf.run())
    return nullptr;
  return captureSnapshot(R.TU, Inf);
}

/// Plans \p NewSource against \p Prev.
DeltaPlan planOf(const std::string &NewSource, const UnitSnapshot &Prev) {
  ParseRig R;
  EXPECT_TRUE(R.parse(NewSource));
  Fdg Graph = buildFdg(R.TU);
  return planDelta(R.TU, Graph, Prev);
}

} // namespace

TEST(DeltaPlan, FormattingOnlyEditIsAllClean) {
  auto Prev = snapshotOf("int f(int *p) { return *p; }\n"
                         "int g(int *q) { return f(q); }\n");
  ASSERT_NE(Prev, nullptr);
  DeltaPlan Plan = planOf("int f(int *p){return *p;}\n"
                          "int g(int *q){return f(q);}\n",
                          *Prev);
  EXPECT_TRUE(Plan.Compatible);
  EXPECT_EQ(Plan.NumDirtySccs, 0u);
  EXPECT_EQ(Plan.NumReusedSccs, 2u);
  EXPECT_TRUE(Plan.DirtyFunctions.empty());
}

TEST(DeltaPlan, LeafEditDirtiesCallersNotSiblings) {
  auto Prev = snapshotOf("int f(int *p) { return *p; }\n"
                         "int g(int *q) { return f(q); }\n"
                         "int h(int *r) { return *r; }\n");
  ASSERT_NE(Prev, nullptr);
  // Edit f: f's SCC is dirty and caller g's SCC depends on it; h is clean.
  DeltaPlan Plan = planOf("int f(int *p) { *p = 0; return *p; }\n"
                          "int g(int *q) { return f(q); }\n"
                          "int h(int *r) { return *r; }\n",
                          *Prev);
  EXPECT_TRUE(Plan.Compatible);
  EXPECT_EQ(Plan.NumDirtySccs, 2u);
  EXPECT_EQ(Plan.NumReusedSccs, 1u);
}

TEST(DeltaPlan, SharedGlobalCouplesOtherwiseUnrelatedFunctions) {
  auto Prev = snapshotOf("int cell;\n"
                         "void w(void) { cell = 1; }\n"
                         "int r(void) { return cell; }\n"
                         "int lone(int *p) { return *p; }\n");
  ASSERT_NE(Prev, nullptr);
  // w and r share no call edge, but both touch `cell`: editing w must
  // re-solve r too (their constraints share the global's variables).
  DeltaPlan Plan = planOf("int cell;\n"
                          "void w(void) { cell = 2; }\n"
                          "int r(void) { return cell; }\n"
                          "int lone(int *p) { return *p; }\n",
                          *Prev);
  EXPECT_TRUE(Plan.Compatible);
  EXPECT_EQ(Plan.NumReusedSccs, 1u); // Only `lone` survives.
  bool WDirty = false, RDirty = false, LoneDirty = false;
  for (const FunctionDecl *F : Plan.DirtyFunctions) {
    WDirty |= F->getName() == "w";
    RDirty |= F->getName() == "r";
    LoneDirty |= F->getName() == "lone";
  }
  EXPECT_TRUE(WDirty);
  EXPECT_TRUE(RDirty);
  EXPECT_FALSE(LoneDirty);
}

TEST(DeltaPlan, StructuralChangesFallBackToFull) {
  const std::string Base = "int f(int *p) { return *p; }\n"
                           "int g(int *q) { return *q; }\n";
  auto Prev = snapshotOf(Base);
  ASSERT_NE(Prev, nullptr);

  // Function added/removed/renamed: the declaration-region hash covers
  // every signature, so the decl-region check reports these (the explicit
  // function-set comparison behind it is a hash-collision backstop).
  DeltaPlan P1 = planOf(Base + "int h(int *r) { return *r; }\n", *Prev);
  EXPECT_FALSE(P1.Compatible);
  EXPECT_STREQ(P1.FallbackReason, "decl-region");

  // Function removed.
  DeltaPlan P2 = planOf("int f(int *p) { return *p; }\n", *Prev);
  EXPECT_FALSE(P2.Compatible);
  EXPECT_STREQ(P2.FallbackReason, "decl-region");

  // Function renamed.
  DeltaPlan P3 = planOf("int f(int *p) { return *p; }\n"
                        "int g2(int *q) { return *q; }\n",
                        *Prev);
  EXPECT_FALSE(P3.Compatible);
  EXPECT_STREQ(P3.FallbackReason, "decl-region");

  // New call edge (call-graph shape change; also a body edit, but the edge
  // check decides first).
  DeltaPlan P4 = planOf("int f(int *p) { return *p; }\n"
                        "int g(int *q) { return f(q); }\n",
                        *Prev);
  EXPECT_FALSE(P4.Compatible);
  EXPECT_STREQ(P4.FallbackReason, "call-graph");

  // Declaration-region change (new global).
  DeltaPlan P5 = planOf("int cell;\n" + Base, *Prev);
  EXPECT_FALSE(P5.Compatible);
  EXPECT_STREQ(P5.FallbackReason, "decl-region");

  // Signature change (parameter type) is a decl-region change too.
  DeltaPlan P6 = planOf("int f(int p) { return p; }\n"
                        "int g(int *q) { return *q; }\n",
                        *Prev);
  EXPECT_FALSE(P6.Compatible);
  EXPECT_STREQ(P6.FallbackReason, "decl-region");
}

TEST(DeltaPlan, SccMergeAndSplitFallBack) {
  // Splitting a cycle removes an edge; merging adds one. Both change the
  // edge set, so both take the full-analysis path.
  const std::string Cycle = "int f(int *p);\n"
                            "int g(int *q) { return f(q); }\n"
                            "int f(int *p) { return g(p); }\n";
  const std::string Chain = "int f(int *p);\n"
                            "int g(int *q) { return f(q); }\n"
                            "int f(int *p) { return *p; }\n";
  auto PrevCycle = snapshotOf(Cycle);
  ASSERT_NE(PrevCycle, nullptr);
  DeltaPlan Split = planOf(Chain, *PrevCycle);
  EXPECT_FALSE(Split.Compatible);
  EXPECT_STREQ(Split.FallbackReason, "call-graph");

  auto PrevChain = snapshotOf(Chain);
  ASSERT_NE(PrevChain, nullptr);
  DeltaPlan Merge = planOf(Cycle, *PrevChain);
  EXPECT_FALSE(Merge.Compatible);
  EXPECT_STREQ(Merge.FallbackReason, "call-graph");
}

TEST(DeltaPlan, EditInsideACycleDirtiesTheWholeScc) {
  auto Prev = snapshotOf("int f(int *p);\n"
                         "int g(int *q) { return f(q); }\n"
                         "int f(int *p) { return g(p); }\n"
                         "int lone(int *r) { return *r; }\n");
  ASSERT_NE(Prev, nullptr);
  DeltaPlan Plan = planOf("int f(int *p);\n"
                          "int g(int *q) { *q = 1; return f(q); }\n"
                          "int f(int *p) { return g(p); }\n"
                          "int lone(int *r) { return *r; }\n",
                          *Prev);
  EXPECT_TRUE(Plan.Compatible);
  EXPECT_EQ(Plan.NumDirtySccs, 1u); // {f, g} is one SCC.
  EXPECT_EQ(Plan.NumReusedSccs, 1u);
  EXPECT_EQ(Plan.DirtyFunctions.size(), 2u);
}

//===----------------------------------------------------------------------===//
// serve/Pipelines: byte-identity of delta vs cold
//===----------------------------------------------------------------------===//

namespace {

AnalyzeJob makeJob(const std::string &Source, bool Protos = true) {
  AnalyzeJob Job;
  Job.Name = "unit.c";
  Job.Language = "c";
  Job.Source = Source;
  Job.Protos = Protos;
  return Job;
}

/// Cold-analyzes \p Source, then delta-analyzes \p Edited against the
/// captured snapshot, then cold-analyzes \p Edited in a fresh context.
/// Asserts the delta result is byte-identical to the fresh cold run and
/// returns the outcome for dirtiness assertions.
DeltaOutcome expectDeltaIdentical(const std::string &Source,
                                  const std::string &Edited,
                                  bool Protos = true) {
  AnalyzeJob First = makeJob(Source, Protos);
  CachedResult ColdFirst;
  std::shared_ptr<const UnitSnapshot> Snap;
  runAnalysis(First, ColdFirst, &Snap);
  EXPECT_EQ(ColdFirst.ExitCode, 0);
  EXPECT_NE(Snap, nullptr);

  AnalyzeJob Second = makeJob(Edited, Protos);
  CachedResult Delta;
  std::shared_ptr<const UnitSnapshot> Next;
  DeltaOutcome Outcome;
  runAnalysisDelta(Second, *Snap, Delta, Next, Outcome);

  CachedResult Cold;
  runAnalysis(Second, Cold, nullptr);

  EXPECT_EQ(Delta.Out, Cold.Out);
  EXPECT_EQ(Delta.Err, Cold.Err);
  EXPECT_EQ(Delta.ExitCode, Cold.ExitCode);
  return Outcome;
}

} // namespace

TEST(DeltaPipeline, SingleFunctionEditIsIncrementalAndIdentical) {
  DeltaOutcome O = expectDeltaIdentical(
      "int f(int *p) { return *p; }\n"
      "int g(int *q) { return f(q); }\n"
      "int h(int *r) { return *r; }\n",
      "int f(int *p) { return *p; }\n"
      "int g(int *q) { return f(q); }\n"
      "int h(int *r) { *r = 1; return *r; }\n");
  EXPECT_TRUE(O.UsedDelta);
  EXPECT_EQ(O.DirtySccs, 1u);
  EXPECT_EQ(O.ReusedSccs, 2u);
}

TEST(DeltaPipeline, FormattingOnlyEditReusesEverything) {
  DeltaOutcome O = expectDeltaIdentical(
      "int f(int *p) { return *p; }\nint g(int *q) { return f(q); }\n",
      "int f(int *p){return *p;}\nint g(int *q){return f(q);}\n");
  EXPECT_TRUE(O.UsedDelta);
  EXPECT_EQ(O.DirtySccs, 0u);
  EXPECT_EQ(O.ReusedSccs, 2u);
}

TEST(DeltaPipeline, CallerEditStaysIdenticalUnrelatedSccReplays) {
  // Editing the caller drags its callee into the dirty class (their
  // constraint graphs share the callee's interface variables -- coupling is
  // symmetric), but the unrelated function's SCC is replayed, not
  // re-solved, and the bytes still match the cold run.
  DeltaOutcome O = expectDeltaIdentical(
      "int f(int *p) { return *p; }\n"
      "int g(int *q) { return f(q); }\n"
      "int h(int *r) { return *r; }\n",
      "int f(int *p) { return *p; }\n"
      "int g(int *q) { *q = 1; return f(q); }\n"
      "int h(int *r) { return *r; }\n");
  EXPECT_TRUE(O.UsedDelta);
  EXPECT_EQ(O.DirtySccs, 2u);
  EXPECT_EQ(O.ReusedSccs, 1u);
}

TEST(DeltaPipeline, CycleEditIsIncrementalAndIdentical) {
  DeltaOutcome O = expectDeltaIdentical(
      "int f(int *p);\n"
      "int g(int *q) { return f(q); }\n"
      "int f(int *p) { return g(p); }\n"
      "int lone(int *r) { return *r; }\n",
      "int f(int *p);\n"
      "int g(int *q) { *q = 1; return f(q); }\n"
      "int f(int *p) { return g(p); }\n"
      "int lone(int *r) { return *r; }\n");
  EXPECT_TRUE(O.UsedDelta);
  EXPECT_EQ(O.DirtySccs, 1u);
  EXPECT_EQ(O.ReusedSccs, 1u);
}

TEST(DeltaPipeline, SharedGlobalEditIsIdentical) {
  DeltaOutcome O = expectDeltaIdentical(
      "int cell;\n"
      "int *w(void) { cell = 1; return &cell; }\n"
      "int r(void) { return cell; }\n"
      "int lone(int *p) { return *p; }\n",
      "int cell;\n"
      "int *w(void) { cell = 2; return &cell; }\n"
      "int r(void) { return cell; }\n"
      "int lone(int *p) { return *p; }\n");
  EXPECT_TRUE(O.UsedDelta);
  EXPECT_EQ(O.ReusedSccs, 1u);
}

TEST(DeltaPipeline, StructuralFallbacksStayIdentical) {
  // Function added (signatures live in the declaration region).
  DeltaOutcome O1 = expectDeltaIdentical(
      "int f(int *p) { return *p; }\n",
      "int f(int *p) { return *p; }\nint g(int *q) { *q = 1; return 0; }\n");
  EXPECT_FALSE(O1.UsedDelta);
  EXPECT_STREQ(O1.FallbackReason, "decl-region");

  // Call-graph change.
  DeltaOutcome O2 = expectDeltaIdentical(
      "int f(int *p) { return *p; }\nint g(int *q) { return *q; }\n",
      "int f(int *p) { return *p; }\nint g(int *q) { return f(q); }\n");
  EXPECT_FALSE(O2.UsedDelta);
  EXPECT_STREQ(O2.FallbackReason, "call-graph");

  // New global (decl region).
  DeltaOutcome O3 = expectDeltaIdentical(
      "int f(int *p) { return *p; }\n",
      "int cell;\nint f(int *p) { cell = *p; return *p; }\n");
  EXPECT_FALSE(O3.UsedDelta);
  EXPECT_STREQ(O3.FallbackReason, "decl-region");
}

TEST(DeltaPipeline, NewCalleeDeclarationFallsBackAndStaysIdentical) {
  // A new external declaration grows the declaration region (and the
  // function set): structural, so delta serves it with the full pipeline.
  DeltaOutcome O = expectDeltaIdentical(
      "int f(int *p) { return *p; }\n",
      "int ext(int *);\nint f(int *p) { return ext(p); }\n");
  EXPECT_FALSE(O.UsedDelta);
}

TEST(DeltaPipeline, ConstViolationEditMatchesColdDiagnostics) {
  AnalyzeJob First = makeJob("int f(const int *p) { return *p; }\n"
                             "int g(int *q) { return f(q); }\n");
  CachedResult ColdFirst;
  std::shared_ptr<const UnitSnapshot> Snap;
  runAnalysis(First, ColdFirst, &Snap);
  ASSERT_EQ(ColdFirst.ExitCode, 0);
  ASSERT_NE(Snap, nullptr);

  // Write through the declared-const pointer: a const error inside f.
  AnalyzeJob Second = makeJob("int f(const int *p) { *p = 1; return *p; }\n"
                              "int g(int *q) { return f(q); }\n");
  CachedResult Delta;
  std::shared_ptr<const UnitSnapshot> Next;
  DeltaOutcome Outcome;
  runAnalysisDelta(Second, *Snap, Delta, Next, Outcome);

  CachedResult Cold;
  runAnalysis(Second, Cold, nullptr);
  EXPECT_EQ(Delta.Out, Cold.Out);
  EXPECT_EQ(Delta.Err, Cold.Err);
  EXPECT_EQ(Delta.ExitCode, Cold.ExitCode);
  EXPECT_NE(Cold.ExitCode, 0);
}

TEST(DeltaPipeline, SyntaxErrorEditMatchesColdDiagnostics) {
  DeltaOutcome O = expectDeltaIdentical("int f(int *p) { return *p; }\n",
                                        "int f(int *p) { return *p;\n");
  EXPECT_FALSE(O.UsedDelta);
  EXPECT_STREQ(O.FallbackReason, "frontend-error");
}

TEST(DeltaPipeline, LambdaLanguageFallsBack) {
  AnalyzeJob Job;
  Job.Name = "t.lam";
  Job.Language = "lambda";
  Job.Source = "let id = fn x => x in id 1";
  CachedResult Cold;
  runAnalysis(Job, Cold, nullptr);

  UnitSnapshot Dummy; // Never consulted on the language fallback.
  CachedResult Delta;
  std::shared_ptr<const UnitSnapshot> Next;
  DeltaOutcome Outcome;
  runAnalysisDelta(Job, Dummy, Delta, Next, Outcome);
  EXPECT_FALSE(Outcome.UsedDelta);
  EXPECT_STREQ(Outcome.FallbackReason, "language");
  EXPECT_EQ(Delta.Out, Cold.Out);
  EXPECT_EQ(Delta.Err, Cold.Err);
  EXPECT_EQ(Next, nullptr);
}

TEST(DeltaPipeline, ChainedEditsKeepSnapshotsUsable) {
  // Snapshot chaining: edit 1 is served incrementally and captures a new
  // snapshot; edit 2 plans against THAT snapshot, not the original.
  std::string V1 = "int a(int *p) { return *p; }\n"
                   "int b(int *q) { return a(q); }\n"
                   "int c(int *r) { return *r; }\n";
  std::string V2 = "int a(int *p) { return *p; }\n"
                   "int b(int *q) { return a(q); }\n"
                   "int c(int *r) { *r = 1; return *r; }\n";
  std::string V3 = "int a(int *p) { *p = 9; return *p; }\n"
                   "int b(int *q) { return a(q); }\n"
                   "int c(int *r) { *r = 1; return *r; }\n";

  CachedResult R1;
  std::shared_ptr<const UnitSnapshot> S1;
  runAnalysis(makeJob(V1), R1, &S1);
  ASSERT_NE(S1, nullptr);

  CachedResult R2;
  std::shared_ptr<const UnitSnapshot> S2;
  DeltaOutcome O2;
  runAnalysisDelta(makeJob(V2), *S1, R2, S2, O2);
  EXPECT_TRUE(O2.UsedDelta);
  ASSERT_NE(S2, nullptr);

  CachedResult R3;
  std::shared_ptr<const UnitSnapshot> S3;
  DeltaOutcome O3;
  runAnalysisDelta(makeJob(V3), *S2, R3, S3, O3);
  EXPECT_TRUE(O3.UsedDelta);
  EXPECT_EQ(O3.DirtySccs, 2u); // a and its caller b; c replays.
  EXPECT_EQ(O3.ReusedSccs, 1u);

  CachedResult Cold3;
  runAnalysis(makeJob(V3), Cold3, nullptr);
  EXPECT_EQ(R3.Out, Cold3.Out);
  EXPECT_EQ(R3.Err, Cold3.Err);
}

//===----------------------------------------------------------------------===//
// serve/SummaryStore
//===----------------------------------------------------------------------===//

namespace {

std::shared_ptr<const UnitSnapshot> dummySnapshot() {
  auto S = std::make_shared<UnitSnapshot>();
  S->DeclRegionHash = 1;
  return S;
}

} // namespace

TEST(SummaryStore, LookupStoreAndReplace) {
  SummaryStore Store(4);
  EXPECT_EQ(Store.lookup("a.c", 1), nullptr);
  auto S1 = dummySnapshot();
  Store.store("a.c", 1, S1);
  EXPECT_EQ(Store.lookup("a.c", 1), S1);
  EXPECT_EQ(Store.lookup("a.c", 2), nullptr); // Config is part of the key.
  EXPECT_EQ(Store.lookup("b.c", 1), nullptr);
  auto S2 = dummySnapshot();
  Store.store("a.c", 1, S2); // Replace, not duplicate.
  EXPECT_EQ(Store.lookup("a.c", 1), S2);
  EXPECT_EQ(Store.stats().Entries, 1u);
}

TEST(SummaryStore, LruEvictsOldest) {
  SummaryStore Store(2);
  Store.store("a.c", 1, dummySnapshot());
  Store.store("b.c", 1, dummySnapshot());
  EXPECT_NE(Store.lookup("a.c", 1), nullptr); // Bump a.c to most-recent.
  Store.store("c.c", 1, dummySnapshot());     // Evicts b.c.
  EXPECT_NE(Store.lookup("a.c", 1), nullptr);
  EXPECT_EQ(Store.lookup("b.c", 1), nullptr);
  EXPECT_NE(Store.lookup("c.c", 1), nullptr);
  EXPECT_EQ(Store.stats().Evictions, 1u);
}

TEST(SummaryStore, ZeroCapacityDisables) {
  SummaryStore Store(0);
  Store.store("a.c", 1, dummySnapshot());
  EXPECT_EQ(Store.lookup("a.c", 1), nullptr);
  EXPECT_EQ(Store.stats().Entries, 0u);
}

TEST(SummaryStore, ClearDropsEverything) {
  SummaryStore Store(4);
  Store.store("a.c", 1, dummySnapshot());
  Store.store("b.c", 1, dummySnapshot());
  Store.clear();
  EXPECT_EQ(Store.stats().Entries, 0u);
  EXPECT_EQ(Store.stats().Bytes, 0u);
  EXPECT_EQ(Store.lookup("a.c", 1), nullptr);
}

//===----------------------------------------------------------------------===//
// serve/Server: analyze-delta end-to-end
//===----------------------------------------------------------------------===//

namespace {

std::string serveStream(const std::string &Requests, ServerConfig Config = {},
                        int ExpectExit = 0) {
  Server S(Config);
  std::istringstream In(Requests);
  std::ostringstream Out;
  EXPECT_EQ(S.run(In, Out), ExpectExit);
  return Out.str();
}

const char *kV1 = "int f(int *p) { return *p; }\\n"
                  "int g(int *q) { return f(q); }\\n"
                  "int h(int *r) { return *r; }\\n";
const char *kV2 = "int f(int *p) { return *p; }\\n"
                  "int g(int *q) { return f(q); }\\n"
                  "int h(int *r) { *r = 1; return *r; }\\n";

std::string analyzeReq(int Id, const char *Method, const char *Src) {
  std::string R = "{\"id\":" + std::to_string(Id) + ",\"method\":\"";
  R += Method;
  R += "\",\"params\":{\"name\":\"t.c\",\"source\":\"";
  R += Src;
  R += "\"}}\n";
  return R;
}

/// First response line of a fresh-server cold analyze of \p Src with \p Id.
std::string coldResponse(int Id, const char *Src) {
  std::string Out = serveStream(analyzeReq(Id, "analyze", Src) +
                                "{\"id\":99,\"method\":\"shutdown\"}\n");
  return Out.substr(0, Out.find('\n') + 1);
}

} // namespace

TEST(ServerDelta, EditLoopIsIncrementalAndByteIdentical) {
  std::string Out = serveStream(analyzeReq(1, "analyze", kV1) +
                                analyzeReq(2, "analyze-delta", kV2) +
                                "{\"id\":3,\"method\":\"stats\"}\n"
                                "{\"id\":4,\"method\":\"shutdown\"}\n");
  std::istringstream Lines(Out);
  std::string L1, L2, L3;
  std::getline(Lines, L1);
  std::getline(Lines, L2);
  std::getline(Lines, L3);

  // The delta response is byte-identical to a cold analyze of the edited
  // source on a fresh server (same id so the line matches exactly).
  EXPECT_EQ(L2 + "\n", coldResponse(2, kV2));

  // Delta accounting: one incremental request, summaries replayed.
  EXPECT_NE(L3.find("\"delta\":{"), std::string::npos);
  EXPECT_NE(L3.find("\"snapshot_hits\":1"), std::string::npos);
  EXPECT_NE(L3.find("\"incremental\":1"), std::string::npos);
  EXPECT_NE(L3.find("\"full\":0"), std::string::npos);
  EXPECT_NE(L3.find("\"dirty_sccs\":1"), std::string::npos);
  EXPECT_NE(L3.find("\"reused\":2"), std::string::npos);
}

TEST(ServerDelta, NeverSeenContentFallsBackToFullThenChains) {
  // analyze-delta with no prior snapshot: full run, but it seeds the store,
  // so the NEXT delta is incremental.
  std::string Out = serveStream(analyzeReq(1, "analyze-delta", kV1) +
                                analyzeReq(2, "analyze-delta", kV2) +
                                "{\"id\":3,\"method\":\"stats\"}\n"
                                "{\"id\":4,\"method\":\"shutdown\"}\n");
  std::istringstream Lines(Out);
  std::string L1, L2, L3;
  std::getline(Lines, L1);
  std::getline(Lines, L2);
  std::getline(Lines, L3);
  EXPECT_EQ(L1 + "\n", coldResponse(1, kV1));
  EXPECT_EQ(L2 + "\n", coldResponse(2, kV2));
  EXPECT_NE(L3.find("\"snapshot_misses\":1"), std::string::npos);
  EXPECT_NE(L3.find("\"snapshot_hits\":1"), std::string::npos);
  EXPECT_NE(L3.find("\"full\":1"), std::string::npos);
  EXPECT_NE(L3.find("\"incremental\":1"), std::string::npos);
}

TEST(ServerDelta, SnapshotsDisabledStillAnswersIdentically) {
  ServerConfig Config;
  Config.MaxSnapshots = 0;
  std::string Out = serveStream(analyzeReq(1, "analyze", kV1) +
                                    analyzeReq(2, "analyze-delta", kV2) +
                                    "{\"id\":3,\"method\":\"stats\"}\n"
                                    "{\"id\":4,\"method\":\"shutdown\"}\n",
                                Config);
  std::istringstream Lines(Out);
  std::string L1, L2, L3;
  std::getline(Lines, L1);
  std::getline(Lines, L2);
  std::getline(Lines, L3);
  EXPECT_EQ(L2 + "\n", coldResponse(2, kV2));
  EXPECT_NE(L3.find("\"snapshots\":0"), std::string::npos);
  EXPECT_NE(L3.find("\"incremental\":0"), std::string::npos);
  EXPECT_NE(L3.find("\"full\":1"), std::string::npos);
}

TEST(ServerDelta, InvalidateClearsSnapshots) {
  std::string Out = serveStream(analyzeReq(1, "analyze", kV1) +
                                "{\"id\":2,\"method\":\"invalidate\"}\n"
                                "{\"id\":3,\"method\":\"stats\"}\n"
                                "{\"id\":4,\"method\":\"shutdown\"}\n");
  std::istringstream Lines(Out);
  std::string L1, L2, L3;
  std::getline(Lines, L1);
  std::getline(Lines, L2);
  std::getline(Lines, L3);
  EXPECT_NE(L3.find("\"snapshots\":0"), std::string::npos);
}

TEST(ServerDelta, CacheHitShortCircuitsDelta) {
  // Re-sending identical content as analyze-delta answers from the result
  // cache: neither full nor incremental analysis runs.
  std::string Out = serveStream(analyzeReq(1, "analyze", kV1) +
                                analyzeReq(2, "analyze-delta", kV1) +
                                "{\"id\":3,\"method\":\"stats\"}\n"
                                "{\"id\":4,\"method\":\"shutdown\"}\n");
  std::istringstream Lines(Out);
  std::string L1, L2, L3;
  std::getline(Lines, L1);
  std::getline(Lines, L2);
  std::getline(Lines, L3);
  // Identical bytes modulo the id.
  EXPECT_EQ(L1.substr(L1.find(",\"ok\"")), L2.substr(L2.find(",\"ok\"")));
  EXPECT_NE(L3.find("\"requests\":1"), std::string::npos); // delta.requests
  EXPECT_NE(L3.find("\"incremental\":0"), std::string::npos);
  EXPECT_NE(L3.find("\"full\":0"), std::string::npos);
}

TEST(ServerDelta, ParallelStreamMatchesSerial) {
  // The same mixed analyze / analyze-delta stream answers byte-identically
  // at -j1 and -j4 (the ordered-slot discipline extends to delta).
  std::string Requests;
  Requests += analyzeReq(1, "analyze", kV1);
  Requests += analyzeReq(2, "analyze-delta", kV2);
  Requests += analyzeReq(3, "analyze-delta", kV1);
  Requests += analyzeReq(4, "analyze", kV2);
  Requests += "{\"id\":5,\"method\":\"shutdown\"}\n";

  ServerConfig Serial;
  Serial.Jobs = 1;
  ServerConfig Parallel;
  Parallel.Jobs = 4;
  EXPECT_EQ(serveStream(Requests, Serial), serveStream(Requests, Parallel));
}

//===- tests/scheme_edge_test.cpp - Scheme simplification edge cases ------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The generalization step *simplifies* schemes to interface summaries
/// (TypeScheme.cpp). These tests pin down that the simplification is
/// behaviour-preserving: masked (well-formedness) constraints survive with
/// their masks, internal chains compress to the same observable bounds,
/// free-variable links replay per instance, and nested instantiation
/// composes.
///
//===----------------------------------------------------------------------===//

#include "qual/Subtype.h"
#include "qual/TypeScheme.h"
#include "qual/WellFormed.h"

#include <gtest/gtest.h>

using namespace quals;

namespace {

class SchemeEdge : public ::testing::Test {
protected:
  QualifierSet QS;
  QualifierId Const, Dynamic;
  TypeCtor Int{"int", {}};
  TypeCtor Fn{"->",
              {Variance::Contravariant, Variance::Covariant},
              PrintStyle::Infix};
  QualTypeFactory Factory;

  void SetUp() override {
    Const = QS.add("const", Polarity::Positive);
    Dynamic = QS.add("dynamic", Polarity::Positive);
  }

  QualExpr var(ConstraintSystem &Sys, const char *Name) {
    return QualExpr::makeVar(Sys.freshVar(Name));
  }
};

TEST_F(SchemeEdge, InternalChainCompressesToSameBounds) {
  // p -> i1 -> ... -> i100 -> r inside the body: the scheme must expose
  // p <= r with the intermediates eliminated.
  ConstraintSystem Sys(QS);
  Watermark Mark = takeWatermark(Sys);
  QualExpr P = var(Sys, "p"), R = var(Sys, "r");
  QualExpr Prev = P;
  for (int I = 0; I != 100; ++I) {
    QualExpr Next = var(Sys, "i");
    Sys.addLeq(Prev, Next, {"body"});
    Prev = Next;
  }
  Sys.addLeq(Prev, R, {"body"});
  QualType Body = Factory.make(
      var(Sys, "fn"), &Fn,
      {Factory.make(P, &Int), Factory.make(R, &Int)});
  QualScheme S = QualScheme::generalize(Sys, Body, Mark);

  // The summary is small: no 100-element chain.
  EXPECT_LE(S.getCannedConstraints().size(), 8u);

  QualType Use = S.instantiate(Sys, Factory);
  Sys.addLeq(QualExpr::makeConst(QS.valueWithPresent({Const})),
             Use.getArg(0).getQual(), {"const into instance param"});
  ASSERT_TRUE(Sys.solve());
  EXPECT_TRUE(Sys.mustHave(Use.getArg(1).getQual().getVar(), Const));
}

TEST_F(SchemeEdge, ConstantBoundsThroughInternalsSurvive) {
  // const flows into an internal var that flows into the result: the
  // instance's result must carry the const lower bound. Symmetrically an
  // upper bound reached through internals caps the parameter.
  ConstraintSystem Sys(QS);
  Watermark Mark = takeWatermark(Sys);
  QualExpr P = var(Sys, "p"), R = var(Sys, "r");
  QualExpr Mid1 = var(Sys, "m1"), Mid2 = var(Sys, "m2");
  Sys.addLeq(QualExpr::makeConst(QS.valueWithPresent({Const})), Mid1,
             {"internal const source"});
  Sys.addLeq(Mid1, R, {"to result"});
  Sys.addLeq(P, Mid2, {"param in"});
  Sys.addLeq(Mid2, QualExpr::makeConst(QS.notQual(Dynamic)),
             {"internal cap"});
  QualType Body = Factory.make(
      var(Sys, "fn"), &Fn,
      {Factory.make(P, &Int), Factory.make(R, &Int)});
  QualScheme S = QualScheme::generalize(Sys, Body, Mark);

  QualType Use = S.instantiate(Sys, Factory);
  ASSERT_TRUE(Sys.solve());
  EXPECT_TRUE(Sys.mustHave(Use.getArg(1).getQual().getVar(), Const));
  EXPECT_FALSE(Sys.mayHave(Use.getArg(0).getQual().getVar(), Dynamic));
}

TEST_F(SchemeEdge, MaskedConstraintsKeepTheirMasks) {
  // A well-formedness edge (dynamic only) inside the body must not start
  // carrying const after simplification.
  ConstraintSystem Sys(QS);
  Watermark Mark = takeWatermark(Sys);
  QualExpr P = var(Sys, "p"), R = var(Sys, "r");
  Sys.addLeqMasked(P, R, QS.bitFor(Dynamic), {"wf: dynamic upward"});
  QualType Body = Factory.make(
      var(Sys, "fn"), &Fn,
      {Factory.make(P, &Int), Factory.make(R, &Int)});
  QualScheme S = QualScheme::generalize(Sys, Body, Mark);

  QualType Use = S.instantiate(Sys, Factory);
  Sys.addLeq(QualExpr::makeConst(
                 QS.valueWithPresent({Const, Dynamic})),
             Use.getArg(0).getQual(), {"const+dynamic into param"});
  ASSERT_TRUE(Sys.solve());
  QualVarId Result = Use.getArg(1).getQual().getVar();
  EXPECT_TRUE(Sys.mustHave(Result, Dynamic));  // crossed the masked edge
  EXPECT_FALSE(Sys.mustHave(Result, Const));   // blocked by the mask
}

TEST_F(SchemeEdge, FreeVariableLinksReplayPerInstance) {
  // Bound var -> global (free) var: every instance links to the same
  // global. Two instances both raise it.
  ConstraintSystem Sys(QS);
  QualVarId Global = Sys.freshVar("global");
  Watermark Mark = takeWatermark(Sys);
  QualExpr P = var(Sys, "p");
  Sys.addLeq(P, QualExpr::makeVar(Global), {"escapes to global"});
  QualType Body = Factory.make(
      var(Sys, "fn"), &Fn,
      {Factory.make(P, &Int), Factory.make(P, &Int)});
  QualScheme S = QualScheme::generalize(Sys, Body, Mark);

  QualType U1 = S.instantiate(Sys, Factory);
  QualType U2 = S.instantiate(Sys, Factory);
  Sys.addLeq(QualExpr::makeConst(QS.valueWithPresent({Const})),
             U1.getArg(0).getQual(), {"u1 const"});
  Sys.addLeq(QualExpr::makeConst(QS.valueWithPresent({Dynamic})),
             U2.getArg(0).getQual(), {"u2 dynamic"});
  ASSERT_TRUE(Sys.solve());
  EXPECT_TRUE(Sys.mustHave(Global, Const));
  EXPECT_TRUE(Sys.mustHave(Global, Dynamic));
}

TEST_F(SchemeEdge, ReverseFlowFromFreeVariable) {
  // Global (free) var -> bound var: the global's qualifiers reach every
  // instance, including qualifiers added *after* generalization.
  ConstraintSystem Sys(QS);
  QualVarId Global = Sys.freshVar("global");
  Watermark Mark = takeWatermark(Sys);
  QualExpr P = var(Sys, "p");
  Sys.addLeq(QualExpr::makeVar(Global), P, {"global flows in"});
  QualType Body = Factory.make(P, &Int);
  QualScheme S = QualScheme::generalize(Sys, Body, Mark);

  QualType Use = S.instantiate(Sys, Factory);
  Sys.addLeq(QualExpr::makeConst(QS.valueWithPresent({Const})),
             QualExpr::makeVar(Global), {"late const on global"});
  ASSERT_TRUE(Sys.solve());
  EXPECT_TRUE(Sys.mustHave(Use.getQual().getVar(), Const));
}

TEST_F(SchemeEdge, InstantiationOfInstantiationComposes) {
  // Generalize f; instantiate inside g's body; generalize g; instantiate
  // g: bounds flow through both layers.
  ConstraintSystem Sys(QS);

  Watermark MarkF = takeWatermark(Sys);
  QualExpr FP = var(Sys, "fp");
  Sys.addLeq(QualExpr::makeConst(QS.valueWithPresent({Const})), FP,
             {"f makes it const"});
  QualType FBody = Factory.make(
      var(Sys, "f"), &Fn, {Factory.make(FP, &Int), Factory.make(FP, &Int)});
  QualScheme F = QualScheme::generalize(Sys, FBody, MarkF);

  Watermark MarkG = takeWatermark(Sys);
  QualType FUse = F.instantiate(Sys, Factory);
  // g returns f's result.
  QualType GBody = Factory.make(var(Sys, "g"), &Fn,
                                {FUse.getArg(0), FUse.getArg(1)});
  QualScheme G = QualScheme::generalize(Sys, GBody, MarkG);

  QualType GUse = G.instantiate(Sys, Factory);
  ASSERT_TRUE(Sys.solve());
  EXPECT_TRUE(Sys.mustHave(GUse.getArg(1).getQual().getVar(), Const));
}

TEST_F(SchemeEdge, MasterVariablesStayUnpolluted) {
  // Constraints placed on an *instance* must not leak back into the
  // scheme's master variables (this is what the Table 2 poly counting
  // relies on).
  ConstraintSystem Sys(QS);
  Watermark Mark = takeWatermark(Sys);
  QualExpr P = var(Sys, "p");
  QualType Body = Factory.make(
      var(Sys, "fn"), &Fn, {Factory.make(P, &Int), Factory.make(P, &Int)});
  QualScheme S = QualScheme::generalize(Sys, Body, Mark);
  QualVarId Master = P.getVar();

  QualType Use = S.instantiate(Sys, Factory);
  Sys.addLeq(QualExpr::makeConst(QS.valueWithPresent({Const})),
             Use.getArg(0).getQual(), {"instance made const"});
  Sys.addLeq(Use.getArg(0).getQual(),
             QualExpr::makeConst(QS.valueWithPresent({Const})),
             {"and capped"});
  ASSERT_TRUE(Sys.solve());
  EXPECT_FALSE(Sys.mustHave(Master, Const));
  EXPECT_TRUE(Sys.mayHave(Master, Dynamic));
}

TEST_F(SchemeEdge, SelfLoopInBodyIsHarmless) {
  ConstraintSystem Sys(QS);
  Watermark Mark = takeWatermark(Sys);
  QualExpr P = var(Sys, "p"), Q = var(Sys, "q");
  Sys.addLeq(P, Q, {"pq"});
  Sys.addLeq(Q, P, {"qp"}); // cycle between two interface vars
  QualType Body = Factory.make(
      var(Sys, "fn"), &Fn, {Factory.make(P, &Int), Factory.make(Q, &Int)});
  QualScheme S = QualScheme::generalize(Sys, Body, Mark);
  QualType Use = S.instantiate(Sys, Factory);
  Sys.addLeq(QualExpr::makeConst(QS.valueWithPresent({Const})),
             Use.getArg(0).getQual(), {"seed"});
  ASSERT_TRUE(Sys.solve());
  EXPECT_TRUE(Sys.mustHave(Use.getArg(1).getQual().getVar(), Const));
  EXPECT_TRUE(Sys.mustHave(Use.getArg(0).getQual().getVar(), Const));
}

TEST_F(SchemeEdge, EmptyBodyGeneralizesToNothing) {
  ConstraintSystem Sys(QS);
  Watermark Mark = takeWatermark(Sys);
  QualType Body =
      Factory.make(QualExpr::makeConst(QS.bottom()), &Int);
  QualScheme S = QualScheme::generalize(Sys, Body, Mark);
  EXPECT_FALSE(S.isPolymorphic());
  EXPECT_EQ(S.instantiate(Sys, Factory).getShape(), Body.getShape());
}

} // namespace

//===- tests/cfront_test.cpp - C front-end tests --------------------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//

#include "cfront/CParser.h"
#include "cfront/CSema.h"

#include <gtest/gtest.h>

using namespace quals;
using namespace quals::cfront;

namespace {

/// One parse+sema pipeline per test.
struct CRig {
  SourceManager SM;
  DiagnosticEngine Diags{SM};
  CAstContext Ast;
  CTypeContext Types;
  StringInterner Idents;
  TranslationUnit TU;

  bool parse(const std::string &Source) {
    return parseCSource(SM, "test.c", Source, Ast, Types, Idents, Diags, TU);
  }

  bool parseAndAnalyze(const std::string &Source) {
    if (!parse(Source))
      return false;
    CSema Sema(Ast, Types, Idents, Diags);
    return Sema.analyze(TU);
  }

  FunctionDecl *fn(std::string_view Name) {
    auto It = TU.FunctionMap.find(Name);
    return It == TU.FunctionMap.end() ? nullptr : It->second;
  }

  VarDecl *global(std::string_view Name) {
    auto It = TU.GlobalMap.find(Name);
    return It == TU.GlobalMap.end() ? nullptr : It->second;
  }
};

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(CLexer, SkipsPreprocessorAndComments) {
  CRig R;
  unsigned Id = R.SM.addBuffer("t.c", "#include <stdio.h>\n"
                                      "/* block */ int x; // line\n");
  CLexer L(R.SM, Id, R.Diags);
  EXPECT_TRUE(L.next().is(CTok::KwInt));
  EXPECT_TRUE(L.next().is(CTok::Ident));
  EXPECT_TRUE(L.next().is(CTok::Semi));
  EXPECT_TRUE(L.next().is(CTok::Eof));
}

TEST(CLexer, NumbersAndSuffixes) {
  CRig R;
  unsigned Id = R.SM.addBuffer("t.c", "42 0x1F 3.5 1e3 7UL 2.5f");
  CLexer L(R.SM, Id, R.Diags);
  CToken T = L.next();
  EXPECT_TRUE(T.is(CTok::IntLit));
  EXPECT_EQ(T.IntValue, 42);
  T = L.next();
  EXPECT_EQ(T.IntValue, 0x1F);
  T = L.next();
  EXPECT_TRUE(T.is(CTok::FloatLit));
  EXPECT_DOUBLE_EQ(T.FloatValue, 3.5);
  T = L.next();
  EXPECT_TRUE(T.is(CTok::FloatLit));
  T = L.next();
  EXPECT_TRUE(T.is(CTok::IntLit));
  EXPECT_EQ(T.IntValue, 7);
  T = L.next();
  EXPECT_TRUE(T.is(CTok::FloatLit));
}

TEST(CLexer, CharAndStringLiterals) {
  CRig R;
  unsigned Id = R.SM.addBuffer("t.c", "'a' '\\n' \"hi\\\"there\"");
  CLexer L(R.SM, Id, R.Diags);
  CToken T = L.next();
  EXPECT_TRUE(T.is(CTok::CharLit));
  EXPECT_EQ(T.IntValue, 'a');
  T = L.next();
  EXPECT_EQ(T.IntValue, '\n');
  EXPECT_TRUE(L.next().is(CTok::StringLit));
}

TEST(CLexer, MultiCharOperators) {
  CRig R;
  unsigned Id = R.SM.addBuffer("t.c", "-> ++ -- << >> <<= >>= ... && || ==");
  CLexer L(R.SM, Id, R.Diags);
  EXPECT_TRUE(L.next().is(CTok::Arrow));
  EXPECT_TRUE(L.next().is(CTok::PlusPlus));
  EXPECT_TRUE(L.next().is(CTok::MinusMinus));
  EXPECT_TRUE(L.next().is(CTok::LessLess));
  EXPECT_TRUE(L.next().is(CTok::GreaterGreater));
  EXPECT_TRUE(L.next().is(CTok::LessLessAssign));
  EXPECT_TRUE(L.next().is(CTok::GreaterGreaterAssign));
  EXPECT_TRUE(L.next().is(CTok::Ellipsis));
  EXPECT_TRUE(L.next().is(CTok::AmpAmp));
  EXPECT_TRUE(L.next().is(CTok::PipePipe));
  EXPECT_TRUE(L.next().is(CTok::EqEq));
}

//===----------------------------------------------------------------------===//
// Declarations and declarators
//===----------------------------------------------------------------------===//

TEST(CParser, SimpleGlobals) {
  CRig R;
  ASSERT_TRUE(R.parse("int x; const char c; unsigned long ul;"));
  ASSERT_NE(R.global("x"), nullptr);
  EXPECT_EQ(toString(R.global("x")->getType()), "int");
  EXPECT_TRUE(R.global("c")->getType().isConst());
  EXPECT_EQ(toString(R.global("ul")->getType()), "unsigned long");
}

TEST(CParser, PointerDeclarators) {
  CRig R;
  ASSERT_TRUE(R.parse("int *p; const int *q; int * const r;"));
  EXPECT_EQ(toString(R.global("p")->getType()), "int *");
  EXPECT_EQ(toString(R.global("q")->getType()), "const int *");
  // r: const pointer to int.
  EXPECT_TRUE(R.global("r")->getType().isConst());
  EXPECT_TRUE(isa<PointerType>(R.global("r")->getType().getType()));
}

TEST(CParser, ArrayAndMixedDeclarators) {
  CRig R;
  ASSERT_TRUE(R.parse("int a[10]; int *b[4]; char m[3][5];"));
  const auto *A = dyn_cast<ArrayType>(R.global("a")->getType().getType());
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(A->getSize(), 10);
  // b: array of 4 pointers to int.
  const auto *B = dyn_cast<ArrayType>(R.global("b")->getType().getType());
  ASSERT_NE(B, nullptr);
  EXPECT_TRUE(isa<PointerType>(B->getElement().getType()));
  // m: array of 3 arrays of 5 char.
  const auto *M = dyn_cast<ArrayType>(R.global("m")->getType().getType());
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(M->getSize(), 3);
  EXPECT_TRUE(isa<ArrayType>(M->getElement().getType()));
}

TEST(CParser, FunctionPointerDeclarator) {
  CRig R;
  ASSERT_TRUE(R.parse("int (*handler)(int, char *);"));
  VarDecl *H = R.global("handler");
  ASSERT_NE(H, nullptr);
  const auto *PT = dyn_cast<PointerType>(H->getType().getType());
  ASSERT_NE(PT, nullptr);
  const auto *FT = dyn_cast<FunctionType>(PT->getPointee().getType());
  ASSERT_NE(FT, nullptr);
  EXPECT_EQ(FT->getParams().size(), 2u);
}

TEST(CParser, FunctionReturningPointer) {
  CRig R;
  ASSERT_TRUE(R.parse("char *strchr(const char *s, int c);"));
  FunctionDecl *F = R.fn("strchr");
  ASSERT_NE(F, nullptr);
  EXPECT_FALSE(F->isDefined());
  EXPECT_EQ(toString(F->getType()->getReturn()), "char *");
  ASSERT_EQ(F->getParams().size(), 2u);
  const auto *PT =
      dyn_cast<PointerType>(F->getParams()[0]->getType().getType());
  ASSERT_NE(PT, nullptr);
  EXPECT_TRUE(PT->getPointee().isConst());
}

TEST(CParser, TypedefsAreMacroExpanded) {
  // The paper's Section 4.2 example: "typedef int *ip; ip c, d;" -- c and d
  // share no qualifier annotations (each gets the expanded type).
  CRig R;
  ASSERT_TRUE(R.parse("typedef int *ip; ip c, d;"));
  VarDecl *C = R.global("c"), *D = R.global("d");
  ASSERT_NE(C, nullptr);
  ASSERT_NE(D, nullptr);
  EXPECT_TRUE(isa<PointerType>(C->getType().getType()));
  EXPECT_TRUE(isa<PointerType>(D->getType().getType()));
}

TEST(CParser, TypedefOfStruct) {
  CRig R;
  ASSERT_TRUE(R.parse("typedef struct node { int v; struct node *next; } "
                      "Node; Node *head;"));
  VarDecl *H = R.global("head");
  ASSERT_NE(H, nullptr);
  const auto *PT = dyn_cast<PointerType>(H->getType().getType());
  ASSERT_NE(PT, nullptr);
  EXPECT_TRUE(isa<RecordType>(PT->getPointee().getType()));
}

TEST(CParser, StructDefinitionAndFields) {
  CRig R;
  ASSERT_TRUE(R.parse("struct st { int x; char *name; };"));
  ASSERT_EQ(R.TU.Records.size(), 1u);
  RecordDecl *RD = R.TU.Records[0];
  EXPECT_TRUE(RD->isComplete());
  ASSERT_EQ(RD->getFields().size(), 2u);
  EXPECT_EQ(RD->getFields()[1]->getName(), "name");
}

TEST(CParser, SelfReferentialStruct) {
  CRig R;
  ASSERT_TRUE(R.parse("struct list { struct list *next; int v; };"));
  RecordDecl *RD = R.TU.Records[0];
  const auto *PT =
      dyn_cast<PointerType>(RD->getFields()[0]->getType().getType());
  ASSERT_NE(PT, nullptr);
  const auto *RT = dyn_cast<RecordType>(PT->getPointee().getType());
  ASSERT_NE(RT, nullptr);
  EXPECT_EQ(RT->getDecl(), RD);
}

TEST(CParser, EnumWithValues) {
  CRig R;
  ASSERT_TRUE(R.parse("enum color { RED, GREEN = 5, BLUE };"));
  EXPECT_EQ(R.TU.EnumConstants.at("RED"), 0);
  EXPECT_EQ(R.TU.EnumConstants.at("GREEN"), 5);
  EXPECT_EQ(R.TU.EnumConstants.at("BLUE"), 6);
}

TEST(CParser, VariadicPrototype) {
  CRig R;
  ASSERT_TRUE(R.parse("int printf(const char *fmt, ...);"));
  FunctionDecl *F = R.fn("printf");
  ASSERT_NE(F, nullptr);
  EXPECT_TRUE(F->getType()->isVariadic());
}

TEST(CParser, KAndRNoPrototype) {
  CRig R;
  ASSERT_TRUE(R.parse("int legacy();"));
  EXPECT_TRUE(R.fn("legacy")->getType()->hasNoPrototype());
}

TEST(CParser, FunctionDefinitionWithBody) {
  CRig R;
  ASSERT_TRUE(R.parse("int add(int a, int b) { return a + b; }"));
  FunctionDecl *F = R.fn("add");
  ASSERT_NE(F, nullptr);
  EXPECT_TRUE(F->isDefined());
  ASSERT_EQ(F->getParams().size(), 2u);
  EXPECT_EQ(F->getParams()[0]->getName(), "a");
}

TEST(CParser, PrototypeThenDefinitionMerges) {
  CRig R;
  ASSERT_TRUE(R.parse("int f(int); int f(int x) { return x; }"));
  FunctionDecl *F = R.fn("f");
  ASSERT_NE(F, nullptr);
  EXPECT_TRUE(F->isDefined());
  // Only one entry in Functions for f.
  int Count = 0;
  for (FunctionDecl *G : R.TU.Functions)
    if (G->getName() == "f")
      ++Count;
  EXPECT_EQ(Count, 1);
}

TEST(CParser, ArrayParamsDecay) {
  CRig R;
  ASSERT_TRUE(R.parse("int sum(int v[], int n) { return 0; }"));
  FunctionDecl *F = R.fn("sum");
  EXPECT_TRUE(isa<PointerType>(F->getParams()[0]->getType().getType()));
}

TEST(CParser, AllStatementForms) {
  CRig R;
  ASSERT_TRUE(R.parse(
      "int f(int n) {\n"
      "  int i; int acc = 0;\n"
      "  for (i = 0; i < n; i++) { acc += i; }\n"
      "  while (acc > 100) acc /= 2;\n"
      "  do { acc--; } while (acc > 50);\n"
      "  switch (n) { case 0: acc = 1; break; default: break; }\n"
      "  if (acc) return acc; else return -1;\n"
      "}\n"));
}

TEST(CParser, GotoAndLabels) {
  CRig R;
  ASSERT_TRUE(R.parse("int f(void) { int x = 0; again: x++; "
                      "if (x < 3) goto again; return x; }"));
}

TEST(CParser, ExpressionZoo) {
  CRig R;
  ASSERT_TRUE(R.parseAndAnalyze(
      "struct p { int x, y; };\n"
      "int g(struct p *q, int n) {\n"
      "  int a = n ? q->x : q->y;\n"
      "  int b = (a << 2) | (n & 7);\n"
      "  int c = sizeof(struct p) + sizeof a;\n"
      "  a += b, b -= c;\n"
      "  return !a == (b != c);\n"
      "}\n")) << R.Diags.renderAll();
}

TEST(CParser, CastExpressions) {
  CRig R;
  ASSERT_TRUE(R.parseAndAnalyze(
      "typedef unsigned long size_t;\n"
      "char *f(void *p, long n) { return (char *)p + (size_t)n; }\n"))
      << R.Diags.renderAll();
  // Find the cast in the body and verify its type.
}

TEST(CParser, ErrorRecoversAndReports) {
  CRig R;
  EXPECT_FALSE(R.parse("int f( { return; }  int ok;"));
  EXPECT_TRUE(R.Diags.hasErrors());
}

//===----------------------------------------------------------------------===//
// Sema
//===----------------------------------------------------------------------===//

TEST(CSemaTest, TypesSimpleExpressions) {
  CRig R;
  ASSERT_TRUE(R.parseAndAnalyze(
      "int g;\n"
      "int f(int a, int *p) { g = a + *p; return g; }\n"))
      << R.Diags.renderAll();
}

TEST(CSemaTest, LValueClassification) {
  CRig R;
  ASSERT_TRUE(R.parseAndAnalyze(
      "struct s { int f; };\n"
      "void f(struct s *p, int *q, int n) {\n"
      "  p->f = 1; q[n] = 2; *q = 3;\n"
      "}\n"))
      << R.Diags.renderAll();
}

TEST(CSemaTest, AddressOfRValueRejected) {
  CRig R;
  EXPECT_FALSE(R.parseAndAnalyze("void f(int a) { int *p = &(a + 1); }"));
}

TEST(CSemaTest, UndeclaredVariableRejected) {
  CRig R;
  EXPECT_FALSE(R.parseAndAnalyze("int f(void) { return missing; }"));
}

TEST(CSemaTest, UnknownFieldRejected) {
  CRig R;
  EXPECT_FALSE(R.parseAndAnalyze(
      "struct s { int a; }; int f(struct s x) { return x.b; }"));
}

TEST(CSemaTest, ImplicitFunctionDeclarationCreated) {
  // Calls to undefined functions become implicit declarations (the
  // library-function case of Section 4.2).
  CRig R;
  ASSERT_TRUE(R.parseAndAnalyze("int f(void) { return external_call(3); }"))
      << R.Diags.renderAll();
  FunctionDecl *F = R.fn("external_call");
  ASSERT_NE(F, nullptr);
  EXPECT_TRUE(F->isImplicit());
  EXPECT_FALSE(F->isDefined());
}

TEST(CSemaTest, EnumConstantsAreInts) {
  CRig R;
  ASSERT_TRUE(R.parseAndAnalyze(
      "enum e { A, B }; int f(void) { return A + B; }"))
      << R.Diags.renderAll();
}

TEST(CSemaTest, StringLiteralIsCharPointer) {
  CRig R;
  ASSERT_TRUE(R.parseAndAnalyze(
      "char *f(void) { return \"hello\"; }"))
      << R.Diags.renderAll();
}

TEST(CSemaTest, MultiBufferWholeProgram) {
  // The paper analyzes multi-file programs at once; declarations merge.
  CRig R;
  ASSERT_TRUE(R.parse("int shared(int x);"));
  ASSERT_TRUE(R.parse("int shared(int x) { return x; }"));
  ASSERT_TRUE(R.parse("int user(void) { return shared(1); }"));
  CSema Sema(R.Ast, R.Types, R.Idents, R.Diags);
  ASSERT_TRUE(Sema.analyze(R.TU)) << R.Diags.renderAll();
  EXPECT_TRUE(R.fn("shared")->isDefined());
}

TEST(CSemaTest, FunctionPointerCall) {
  CRig R;
  ASSERT_TRUE(R.parseAndAnalyze(
      "int apply(int (*fp)(int), int x) { return fp(x); }"))
      << R.Diags.renderAll();
}

} // namespace

//===- tests/serve_test.cpp - Analysis server unit tests ------------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
//
// Covers the serving layer bottom-up: support/Hash (stability, the
// never-zero contract), serve/Protocol (the hardened JSON request parser
// and its budgets), serve/ResultCache (LRU byte budget, invalidation, the
// disk spill format including corruption handling), and serve/Server
// end-to-end over string streams (response ordering at every worker count,
// cold-vs-warm byte identity, error responses, clean shutdown).
//
//===----------------------------------------------------------------------===//

#include "serve/Pipelines.h"
#include "serve/Protocol.h"
#include "serve/RequestLog.h"
#include "serve/ResultCache.h"
#include "serve/Server.h"
#include "support/Hash.h"
#include "support/Metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <unistd.h>

using namespace quals;
using namespace quals::serve;

//===----------------------------------------------------------------------===//
// support/Hash
//===----------------------------------------------------------------------===//

TEST(Hash, DeterministicAndDiffuse) {
  EXPECT_EQ(hashString("int f();"), hashString("int f();"));
  EXPECT_NE(hashString("int f();"), hashString("int g();"));
  EXPECT_NE(hashString("a"), hashString("b"));
  // Size is folded in, so a shared prefix is not a shared hash.
  EXPECT_NE(hashString(""), hashString(std::string_view("\0", 1)));
  EXPECT_NE(hashBytes("xy", 1), hashBytes("xy", 2));
}

TEST(Hash, NeverReturnsZero) {
  EXPECT_NE(hashString(""), 0u);
  EXPECT_NE(hashBytes(nullptr, 0), 0u);
  HashBuilder B;
  EXPECT_NE(B.digest(), 0u);
}

TEST(Hash, CombineIsOrderDependent) {
  uint64_t A = hashString("alpha"), C = hashString("beta");
  EXPECT_NE(hashCombine(A, C), hashCombine(C, A));
  HashBuilder B1, B2;
  B1.add(A).add(C);
  B2.add(C).add(A);
  EXPECT_NE(B1.digest(), B2.digest());
}

TEST(Hash, StreamHasherIsChunkSplitInvariant) {
  // The summary content address (src/link) streams file bytes through
  // StreamHasher in whatever read sizes the OS hands back; every split of
  // the same bytes must produce the digest of the whole.
  const std::string Bytes =
      "QSUM summary bytes \x00\x01\xff with embedded NUL and high bits";
  uint64_t Whole = hashBytes(Bytes.data(), Bytes.size());
  for (size_t Split1 = 0; Split1 <= Bytes.size(); ++Split1) {
    for (size_t Split2 = Split1; Split2 <= Bytes.size(); Split2 += 7) {
      StreamHasher S;
      S.update(Bytes.data(), Split1);
      S.update(Bytes.data() + Split1, Split2 - Split1);
      S.update(Bytes.data() + Split2, Bytes.size() - Split2);
      EXPECT_EQ(S.digest(), Whole)
          << "splits at " << Split1 << ", " << Split2;
      EXPECT_EQ(S.size(), Bytes.size());
    }
  }
  // Including the all-in-one-call and the byte-at-a-time extremes.
  StreamHasher ByteWise;
  for (char C : Bytes)
    ByteWise.update(&C, 1);
  EXPECT_EQ(ByteWise.digest(), Whole);
  // Empty updates are no-ops.
  StreamHasher Empty;
  Empty.update(nullptr, 0);
  EXPECT_EQ(Empty.digest(), hashBytes(nullptr, 0));
  EXPECT_NE(Empty.digest(), 0u);
}

TEST(Hash, StreamHasherDigestDoesNotConsume) {
  StreamHasher S;
  S.update("abc");
  uint64_t D1 = S.digest();
  EXPECT_EQ(S.digest(), D1); // Idempotent.
  S.update("def");
  EXPECT_EQ(S.digest(), hashString("abcdef"));
}

TEST(Hash, HashBuilderChunksAreNotInvariant) {
  // Documented contrast: HashBuilder::addBytes digests per chunk, so chunk
  // boundaries are part of its result -- which is why the content address
  // uses StreamHasher instead.
  HashBuilder OneChunk, TwoChunks;
  OneChunk.addBytes("abcdef", 6);
  TwoChunks.addBytes("abc", 3).addBytes("def", 3);
  EXPECT_NE(OneChunk.digest(), TwoChunks.digest());
}

TEST(Hash, ConfigHashSeparatesEveryField) {
  AnalyzeJob Base;
  Base.Name = "a.c";
  Base.Language = "c";
  uint64_t H0 = configHash(Base);

  AnalyzeJob J = Base;
  J.Name = "b.c"; // Diagnostics embed the name; distinct result bytes.
  EXPECT_NE(configHash(J), H0);
  J = Base;
  J.Language = "lambda";
  EXPECT_NE(configHash(J), H0);
  J = Base;
  J.Polymorphic = false;
  EXPECT_NE(configHash(J), H0);
  J = Base;
  J.Protos = true;
  EXPECT_NE(configHash(J), H0);
  J = Base;
  J.Lim.MaxErrors = 3; // Limits can change diagnostics, so they key too.
  EXPECT_NE(configHash(J), H0);
  // The source bytes are the *other* key half, never part of the config.
  J = Base;
  J.Source = "int x;";
  EXPECT_EQ(configHash(J), H0);
}

//===----------------------------------------------------------------------===//
// serve/Protocol: JSON parsing
//===----------------------------------------------------------------------===//

namespace {

JsonValue parseOk(const std::string &Text) {
  JsonValue V;
  std::string Error;
  EXPECT_TRUE(parseJson(Text, ProtocolLimits(), V, Error)) << Error;
  return V;
}

std::string parseErr(const std::string &Text,
                     ProtocolLimits Lim = ProtocolLimits()) {
  JsonValue V;
  std::string Error;
  EXPECT_FALSE(parseJson(Text, Lim, V, Error)) << "input: " << Text;
  EXPECT_FALSE(Error.empty());
  return Error;
}

} // namespace

TEST(Protocol, ParsesScalarsAndContainers) {
  EXPECT_TRUE(parseOk("null").isNull());
  EXPECT_TRUE(parseOk("true").asBool());
  EXPECT_FALSE(parseOk("false").asBool());
  EXPECT_EQ(parseOk("-42.5").asNumber(), -42.5);
  EXPECT_EQ(parseOk("\"hi\"").asString(), "hi");

  JsonValue V = parseOk(" {\"a\": [1, 2, {\"b\": null}], \"c\": \"d\"} ");
  ASSERT_EQ(V.kind(), JsonValue::Kind::Object);
  const JsonValue *A = V.find("a");
  ASSERT_NE(A, nullptr);
  ASSERT_EQ(A->elements().size(), 3u);
  EXPECT_EQ(A->elements()[1].asNumber(), 2.0);
  EXPECT_EQ(V.find("c")->asString(), "d");
  EXPECT_EQ(V.find("missing"), nullptr);
}

TEST(Protocol, AsInt64RangeChecks) {
  bool Ok = false;
  EXPECT_EQ(parseOk("123").asInt64(Ok), 123);
  EXPECT_TRUE(Ok);
  parseOk("1.5").asInt64(Ok);
  EXPECT_FALSE(Ok);
  parseOk("1e300").asInt64(Ok);
  EXPECT_FALSE(Ok);
}

TEST(Protocol, DecodesEscapesAndSurrogates) {
  EXPECT_EQ(parseOk("\"a\\n\\t\\\\\\\"\\/\"").asString(), "a\n\t\\\"/");
  EXPECT_EQ(parseOk("\"\\u0041\"").asString(), "A");
  EXPECT_EQ(parseOk("\"\\u00e9\"").asString(), "\xc3\xa9");       // é
  EXPECT_EQ(parseOk("\"\\u20ac\"").asString(), "\xe2\x82\xac");   // €
  EXPECT_EQ(parseOk("\"\\ud83d\\ude00\"").asString(),
            "\xf0\x9f\x98\x80"); // 😀 via surrogate pair
  // Lone surrogates become U+FFFD, never ill-formed UTF-8 or a crash.
  EXPECT_EQ(parseOk("\"\\ud83dx\"").asString(), "\xef\xbf\xbdx");
  EXPECT_EQ(parseOk("\"\\ude00\"").asString(), "\xef\xbf\xbd");
}

TEST(Protocol, ReportsByteOffsets) {
  EXPECT_NE(parseErr("{\"a\":}").find("byte 5"), std::string::npos);
  parseErr("");
  parseErr("{");
  parseErr("[1,]");
  parseErr("{\"a\":1,}");
  parseErr("\"unterminated");
  parseErr("\"bad \\q escape\"");
  parseErr("nul");
  parseErr("1 2"); // Trailing garbage after the document.
}

TEST(Protocol, EnforcesBudgets) {
  ProtocolLimits Tight;
  Tight.MaxDepth = 4;
  std::string Deep(10, '[');
  Deep += std::string(10, ']');
  EXPECT_NE(parseErr(Deep, Tight).find("depth"), std::string::npos);
  // Exactly at the budget is fine: the meter counts every parser
  // recursion (the stack is the resource), so the innermost scalar is the
  // fourth level here.
  JsonValue V;
  std::string Error;
  EXPECT_TRUE(parseJson("[[[1]]]", Tight, V, Error)) << Error;
  EXPECT_FALSE(parseJson("[[[[1]]]]", Tight, V, Error));

  Tight.MaxStringBytes = 4;
  EXPECT_NE(parseErr("\"hello world\"", Tight).find("string"),
            std::string::npos);

  Tight.MaxRequestBytes = 8;
  parseErr("{\"aaaa\":true}", Tight);
}

//===----------------------------------------------------------------------===//
// serve/Protocol: request validation
//===----------------------------------------------------------------------===//

namespace {

Request requestOk(const std::string &Line) {
  Request R;
  std::string Error;
  EXPECT_TRUE(parseRequest(Line, ProtocolLimits(), R, Error)) << Error;
  return R;
}

std::string requestErr(const std::string &Line) {
  Request R;
  std::string Error;
  EXPECT_FALSE(parseRequest(Line, ProtocolLimits(), R, Error))
      << "input: " << Line;
  EXPECT_FALSE(Error.empty());
  return Error;
}

} // namespace

TEST(Protocol, ParsesAnalyzeRequests) {
  Request R = requestOk("{\"id\":7,\"method\":\"analyze\",\"params\":"
                        "{\"source\":\"int x;\",\"name\":\"t.c\","
                        "\"mono\":true,\"protos\":true}}");
  EXPECT_TRUE(R.HasId);
  EXPECT_EQ(R.Id, 7);
  EXPECT_EQ(R.M, Method::Analyze);
  EXPECT_TRUE(R.HasSource);
  EXPECT_EQ(R.Source, "int x;");
  EXPECT_EQ(R.Name, "t.c");
  EXPECT_FALSE(R.Polymorphic); // mono:true inverts.
  EXPECT_TRUE(R.Protos);

  R = requestOk("{\"id\":1,\"method\":\"analyze\",\"params\":"
                "{\"path\":\"/tmp/x.q\",\"language\":\"lambda\"}}");
  EXPECT_EQ(R.Path, "/tmp/x.q");
  EXPECT_EQ(R.Name, "/tmp/x.q"); // Path doubles as the buffer name.
  EXPECT_EQ(R.Language, "lambda");
  EXPECT_TRUE(R.Polymorphic);
}

TEST(Protocol, ParsesControlRequests) {
  EXPECT_EQ(requestOk("{\"id\":1,\"method\":\"stats\"}").M, Method::Stats);
  EXPECT_EQ(requestOk("{\"id\":2,\"method\":\"shutdown\"}").M,
            Method::Shutdown);
  Request R = requestOk("{\"id\":3,\"method\":\"invalidate\"}");
  EXPECT_EQ(R.M, Method::Invalidate);
  EXPECT_TRUE(R.ContentHashHex.empty());
  R = requestOk("{\"id\":4,\"method\":\"invalidate\",\"params\":"
                "{\"hash\":\"82d966d0f10b53df\"}}");
  EXPECT_EQ(R.ContentHashHex, "82d966d0f10b53df");
}

TEST(Protocol, RejectsIllFormedRequests) {
  requestErr("[1,2,3]");                               // not an object
  requestErr("{\"id\":1}");                            // no method
  requestErr("{\"id\":1,\"method\":\"frobnicate\"}");  // unknown method
  requestErr("{\"id\":1.5,\"method\":\"stats\"}");     // non-integer id
  requestErr("{\"id\":1,\"method\":\"analyze\"}");     // no params
  requestErr("{\"id\":1,\"method\":\"analyze\",\"params\":{}}");
  requestErr("{\"id\":1,\"method\":\"analyze\",\"params\":"
             "{\"path\":\"a\",\"source\":\"b\"}}");    // both
  requestErr("{\"id\":1,\"method\":\"analyze\",\"params\":"
             "{\"source\":\"x\",\"language\":\"ml\"}}");
  requestErr("{\"id\":1,\"method\":\"analyze\",\"params\":"
             "{\"source\":\"x\",\"mono\":\"yes\"}}");  // ill-typed flag
  requestErr("{\"id\":1,\"method\":\"invalidate\",\"params\":"
             "{\"hash\":\"xyzzy\"}}");                 // non-hex hash
  requestErr("{\"id\":1,\"method\":\"invalidate\",\"params\":"
             "{\"hash\":\"0123456789abcdef0\"}}");     // > 16 digits
  // The id is still recovered for the error response when readable.
  Request R;
  std::string Error;
  EXPECT_FALSE(parseRequest("{\"id\":9,\"method\":\"nope\"}",
                            ProtocolLimits(), R, Error));
  EXPECT_TRUE(R.HasId);
  EXPECT_EQ(R.Id, 9);
}

TEST(Protocol, AppendJsonStringRoundTrips) {
  std::string Payload = "line1\nline\t\"2\"\\ \x01\x1f caf\xc3\xa9";
  std::string Encoded;
  appendJsonString(Encoded, Payload);
  EXPECT_EQ(parseOk(Encoded).asString(), Payload);
}

//===----------------------------------------------------------------------===//
// serve/ResultCache
//===----------------------------------------------------------------------===//

namespace {

CachedResult result(const std::string &Out, int Exit = 0) {
  CachedResult R;
  R.Out = Out;
  R.ExitCode = Exit;
  return R;
}

/// A fresh temp dir removed on scope exit (spill tests).
class TempDir {
public:
  TempDir() {
    Dir = std::filesystem::temp_directory_path() /
          ("quals_serve_test_" + std::to_string(::getpid()) + "_" +
           std::to_string(Counter++));
    std::filesystem::create_directories(Dir);
  }
  ~TempDir() {
    std::error_code Ec;
    std::filesystem::remove_all(Dir, Ec);
  }
  std::filesystem::path Dir;

private:
  static int Counter;
};

int TempDir::Counter = 0;

} // namespace

TEST(ResultCache, MissInsertHitByteIdentical) {
  ResultCache Cache;
  CacheKey K{hashString("int x;"), 0x1234};
  CachedResult Got;
  EXPECT_FALSE(Cache.lookup(K, Got));
  CachedResult Put = result("declared 1\n", 2);
  Put.Err = "warning: w\n";
  Cache.insert(K, Put);
  ASSERT_TRUE(Cache.lookup(K, Got));
  EXPECT_EQ(Got.Out, Put.Out);
  EXPECT_EQ(Got.Err, Put.Err);
  EXPECT_EQ(Got.ExitCode, 2);
  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Entries, 1u);
}

TEST(ResultCache, KeyHalvesAreIndependent) {
  ResultCache Cache;
  Cache.insert({10, 20}, result("a"));
  CachedResult Got;
  EXPECT_FALSE(Cache.lookup({10, 21}, Got));
  EXPECT_FALSE(Cache.lookup({11, 20}, Got));
  EXPECT_TRUE(Cache.lookup({10, 20}, Got));
}

TEST(ResultCache, EvictsLeastRecentlyUsedByBytes) {
  // Budget fits ~3 entries of 64+36 bytes payload+overhead. One shard:
  // this test pins exact global-LRU semantics; the sharded default only
  // guarantees LRU within each shard.
  ResultCache Cache(300, "", /*Shards=*/1);
  Cache.insert({1, 1}, result(std::string(36, 'a')));
  Cache.insert({2, 1}, result(std::string(36, 'b')));
  Cache.insert({3, 1}, result(std::string(36, 'c')));
  CachedResult Got;
  ASSERT_TRUE(Cache.lookup({1, 1}, Got)); // Refresh 1; 2 is now LRU.
  Cache.insert({4, 1}, result(std::string(36, 'd')));
  EXPECT_FALSE(Cache.lookup({2, 1}, Got));
  EXPECT_TRUE(Cache.lookup({1, 1}, Got));
  EXPECT_TRUE(Cache.lookup({3, 1}, Got));
  EXPECT_TRUE(Cache.lookup({4, 1}, Got));
  EXPECT_EQ(Cache.stats().Evictions, 1u);
  EXPECT_LE(Cache.stats().Bytes, 300u);
}

TEST(ResultCache, OversizedEntryIsNeverCached) {
  ResultCache Cache(100, "", /*Shards=*/1);
  Cache.insert({1, 1}, result(std::string(200, 'x')));
  CachedResult Got;
  EXPECT_FALSE(Cache.lookup({1, 1}, Got));
  EXPECT_EQ(Cache.stats().Entries, 0u);
}

TEST(ResultCache, ZeroBudgetDisablesCaching) {
  ResultCache Cache(0);
  Cache.insert({1, 1}, result("x"));
  CachedResult Got;
  EXPECT_FALSE(Cache.lookup({1, 1}, Got));
  EXPECT_EQ(Cache.stats().Entries, 0u);
}

TEST(ResultCache, InvalidateContentDropsEveryConfig) {
  ResultCache Cache;
  Cache.insert({7, 1}, result("a"));
  Cache.insert({7, 2}, result("b")); // Same source, different config.
  Cache.insert({8, 1}, result("c"));
  EXPECT_EQ(Cache.invalidateContent(7), 2u);
  CachedResult Got;
  EXPECT_FALSE(Cache.lookup({7, 1}, Got));
  EXPECT_FALSE(Cache.lookup({7, 2}, Got));
  EXPECT_TRUE(Cache.lookup({8, 1}, Got));
  EXPECT_EQ(Cache.invalidateAll(), 1u);
  EXPECT_EQ(Cache.stats().Entries, 0u);
}

TEST(ResultCache, SpillSurvivesRestart) {
  TempDir T;
  CacheKey K{hashString("prog"), 99};
  CachedResult Put = result("out bytes\n", 2);
  Put.Err = "err bytes\n";
  {
    ResultCache Cache(1 << 20, T.Dir.string());
    Cache.insert(K, Put);
    EXPECT_EQ(Cache.stats().SpillWrites, 1u);
  }
  // "Restart": a fresh cache over the same directory.
  ResultCache Cache(1 << 20, T.Dir.string());
  CachedResult Got;
  ASSERT_TRUE(Cache.lookup(K, Got));
  EXPECT_EQ(Got.Out, Put.Out);
  EXPECT_EQ(Got.Err, Put.Err);
  EXPECT_EQ(Got.ExitCode, 2);
  EXPECT_EQ(Cache.stats().SpillLoads, 1u);
  // Now in memory: a second lookup does not touch disk again.
  ASSERT_TRUE(Cache.lookup(K, Got));
  EXPECT_EQ(Cache.stats().SpillLoads, 1u);
}

TEST(ResultCache, SpillRejectsCorruptAndTruncatedFiles) {
  TempDir T;
  CacheKey K{42, 43};
  {
    ResultCache Cache(1 << 20, T.Dir.string());
    Cache.insert(K, result("payload"));
  }
  ASSERT_EQ(std::distance(std::filesystem::directory_iterator(T.Dir),
                          std::filesystem::directory_iterator()), 1);
  std::filesystem::path Entry =
      *std::filesystem::directory_iterator(T.Dir);
  // Truncate mid-payload.
  std::filesystem::resize_file(Entry, 10);
  {
    ResultCache Cache(1 << 20, T.Dir.string());
    CachedResult Got;
    EXPECT_FALSE(Cache.lookup(K, Got));
    // The corrupt file was deleted, not left to fail forever.
    EXPECT_FALSE(std::filesystem::exists(Entry));
  }
  // Garbage magic.
  {
    std::ofstream Out(Entry, std::ios::binary);
    Out << "NOTQSDC garbage that is long enough to cover a header maybe";
  }
  ResultCache Cache(1 << 20, T.Dir.string());
  CachedResult Got;
  EXPECT_FALSE(Cache.lookup(K, Got));
  EXPECT_FALSE(std::filesystem::exists(Entry));
}

TEST(ResultCache, InvalidateAlsoClearsSpill) {
  TempDir T;
  ResultCache Cache(1 << 20, T.Dir.string());
  Cache.insert({1, 1}, result("a"));
  Cache.insert({1, 2}, result("b"));
  Cache.insert({2, 1}, result("c"));
  Cache.invalidateContent(1);
  EXPECT_EQ(std::distance(std::filesystem::directory_iterator(T.Dir),
                          std::filesystem::directory_iterator()), 1);
  Cache.invalidateAll();
  EXPECT_EQ(std::distance(std::filesystem::directory_iterator(T.Dir),
                          std::filesystem::directory_iterator()), 0);
}

TEST(ResultCache, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(ResultCache(1 << 20, "", 1).shardCount(), 1u);
  EXPECT_EQ(ResultCache(1 << 20, "", 3).shardCount(), 4u);
  EXPECT_EQ(ResultCache().shardCount(), ResultCache::DefaultShards);
  // Entries spread across shards still aggregate into one stats view, and
  // every key remains reachable.
  ResultCache Cache(1 << 20, "", 8);
  for (uint64_t I = 1; I <= 64; ++I)
    Cache.insert({I, 1}, result("v" + std::to_string(I)));
  CachedResult Got;
  for (uint64_t I = 1; I <= 64; ++I)
    EXPECT_TRUE(Cache.lookup({I, 1}, Got)) << I;
  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Entries, 64u);
  EXPECT_EQ(S.Inserts, 64u);
  EXPECT_EQ(S.Hits, 64u);
}

TEST(ResultCache, SpillPromotionCountsAsPromotionNotInsert) {
  TempDir T;
  CacheKey K{hashString("warm me"), 7};
  {
    ResultCache Cache(1 << 20, T.Dir.string());
    CachedResult Got;
    EXPECT_FALSE(Cache.lookup(K, Got));
    Cache.insert(K, result("payload\n"));
    CacheStats S = Cache.stats();
    EXPECT_EQ(S.Inserts, 1u);
    EXPECT_EQ(S.Promotions, 0u);
    EXPECT_LE(S.Inserts, S.Misses);
  }
  // Restart-warm: the hit is served from spill and *promoted*, never
  // counted as an insert, so Inserts <= Misses holds across restarts (the
  // accounting bug this pins down reported inserts > misses here).
  ResultCache Cache(1 << 20, T.Dir.string());
  CachedResult Got;
  ASSERT_TRUE(Cache.lookup(K, Got));
  ASSERT_TRUE(Cache.lookup(K, Got)); // Second hit comes from memory.
  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Hits, 2u);
  EXPECT_EQ(S.Misses, 0u);
  EXPECT_EQ(S.Inserts, 0u);
  EXPECT_EQ(S.Promotions, 1u);
  EXPECT_EQ(S.SpillLoads, 1u);
  EXPECT_LE(S.Inserts, S.Misses);
}

TEST(ResultCache, ConcurrentSpillTrafficIsRaceFreeAndCoherent) {
  // Regression (run under TSan in CI): spill-file I/O used to happen
  // inside the cache critical section; now hit/miss/insert/invalidate
  // traffic from many threads, all spill-backed, must be race-free, and
  // every hit must observe the exact payload inserted for its key.
  TempDir T;
  ResultCache Cache(1 << 20, T.Dir.string(), 4);
  constexpr int Threads = 4, Rounds = 64;
  constexpr uint64_t Keys = 16;
  std::atomic<uint64_t> BadPayloads{0};
  std::vector<std::thread> Workers;
  for (int Ti = 0; Ti != Threads; ++Ti) {
    Workers.emplace_back([&Cache, &BadPayloads, Ti] {
      for (int R = 0; R != Rounds; ++R) {
        uint64_t K = static_cast<uint64_t>(Ti * 31 + R) % Keys + 1;
        CacheKey Key{K, 1};
        std::string Want = "payload-" + std::to_string(K) + "\n";
        CachedResult Got;
        if (Cache.lookup(Key, Got)) {
          if (Got.Out != Want)
            ++BadPayloads;
        } else {
          Cache.insert(Key, result(Want));
        }
        if (R % 17 == 0)
          Cache.invalidateContent(K);
      }
    });
  }
  for (std::thread &W : Workers)
    W.join();
  EXPECT_EQ(BadPayloads, 0u);
  CacheStats S = Cache.stats();
  // Each round is exactly one lookup; misses insert, nothing else does.
  EXPECT_EQ(S.Hits + S.Misses,
            static_cast<uint64_t>(Threads) * Rounds);
  EXPECT_LE(S.Inserts, S.Misses);
}

//===----------------------------------------------------------------------===//
// serve/Pipelines
//===----------------------------------------------------------------------===//

TEST(Pipelines, RunsAreDeterministic) {
  AnalyzeJob Job;
  Job.Name = "t.c";
  Job.Source = "int deref(int *p) { return *p; }";
  Job.Language = "c";
  CachedResult A, B;
  runAnalysis(Job, A);
  runAnalysis(Job, B);
  EXPECT_EQ(A.Out, B.Out);
  EXPECT_EQ(A.Err, B.Err);
  EXPECT_EQ(A.ExitCode, B.ExitCode);
  EXPECT_EQ(A.ExitCode, 0);
  EXPECT_NE(A.Out.find("possible-const"), std::string::npos);
}

TEST(Pipelines, ReportsFrontEndErrorsAsExitOne) {
  AnalyzeJob Job;
  Job.Name = "bad.c";
  Job.Source = "int f( {";
  CachedResult R;
  runAnalysis(Job, R);
  EXPECT_EQ(R.ExitCode, 1);
  EXPECT_NE(R.Err.find("bad.c"), std::string::npos);
}

TEST(Pipelines, LambdaPipelineMatchesLanguage) {
  AnalyzeJob Job;
  Job.Name = "t.q";
  Job.Source = "let x = ref 1 in !x ni";
  Job.Language = "lambda";
  CachedResult R;
  runAnalysis(Job, R);
  EXPECT_EQ(R.ExitCode, 0) << R.Err;
  EXPECT_NE(R.Out.find("qualified type"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// serve/Server end-to-end
//===----------------------------------------------------------------------===//

namespace {

/// Runs one request stream through a fresh server; returns the response
/// bytes (and asserts the exit code).
std::string serveStream(const std::string &Requests, ServerConfig Config = {},
                  int ExpectExit = 0) {
  Server S(Config);
  std::istringstream In(Requests);
  std::ostringstream Out;
  EXPECT_EQ(S.run(In, Out), ExpectExit);
  return Out.str();
}

} // namespace

TEST(Server, WarmResponseIsByteIdenticalToCold) {
  std::string Req = "{\"id\":1,\"method\":\"analyze\",\"params\":"
                    "{\"source\":\"int f(int *p) { return *p; }\","
                    "\"name\":\"t.c\"}}\n";
  ServerConfig Config;
  Server S(Config);
  std::istringstream In1(Req), In2(Req);
  std::ostringstream Out1, Out2;
  EXPECT_EQ(S.run(In1, Out1), 0);
  EXPECT_EQ(S.run(In2, Out2), 0); // Second stream hits the warm cache.
  EXPECT_EQ(Out1.str(), Out2.str());
  EXPECT_EQ(S.cache().stats().Hits, 1u);
  EXPECT_EQ(S.cache().stats().Misses, 1u);
}

TEST(Server, ResponsesStayInRequestOrderAtEveryWorkerCount) {
  // Distinct sources so nothing is answered from cache; the -j4 stream
  // must still equal the -j1 stream byte for byte.
  std::string Req;
  for (int I = 0; I != 24; ++I)
    Req += "{\"id\":" + std::to_string(I) +
           ",\"method\":\"analyze\",\"params\":{\"source\":"
           "\"int v" + std::to_string(I) + ";\",\"name\":\"t.c\"}}\n";
  ServerConfig C1, C4;
  C1.Jobs = 1;
  C4.Jobs = 4;
  std::string R1 = serveStream(Req, C1), R4 = serveStream(Req, C4);
  EXPECT_EQ(R1, R4);
  // Sanity: ids appear in order in the response stream.
  size_t Pos = 0;
  for (int I = 0; I != 24; ++I) {
    size_t At = R1.find("{\"id\":" + std::to_string(I) + ",", Pos);
    ASSERT_NE(At, std::string::npos) << "id " << I;
    Pos = At;
  }
}

TEST(Server, MalformedLinesGetErrorResponsesAndServiceContinues) {
  std::string Out = serveStream("this is not json\n"
                          "{\"id\":2,\"method\":\"nope\"}\n"
                          "\n" // Blank keep-alive line: no response.
                          "{\"id\":3,\"method\":\"stats\"}\n");
  EXPECT_NE(Out.find("{\"id\":null,\"ok\":false"), std::string::npos);
  EXPECT_NE(Out.find("{\"id\":2,\"ok\":false"), std::string::npos);
  EXPECT_NE(Out.find("{\"id\":3,\"ok\":true"), std::string::npos);
  EXPECT_EQ(std::count(Out.begin(), Out.end(), '\n'), 3);
}

TEST(Server, OverLongLineIsConsumedNotFatal) {
  ServerConfig Config;
  Config.ProtoLim.MaxRequestBytes = 128;
  std::string Long(1024, 'x');
  std::string Out = serveStream(Long + "\n{\"id\":2,\"method\":\"stats\"}\n",
                          Config);
  EXPECT_NE(Out.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(Out.find("{\"id\":2,\"ok\":true"), std::string::npos);
}

TEST(Server, RequestByteLimitJudgedAfterCrStripping) {
  // Regression: the limit used to count a trailing '\r' before stripping
  // it, so a CRLF peer's request of exactly MaxRequestBytes was rejected
  // while the identical LF-framed request passed.
  ServerConfig Config;
  Config.Telemetry = false; // Stats latency counts would differ per call.
  std::string Req = "{\"id\":1,\"method\":\"stats\"}";
  Config.ProtoLim.MaxRequestBytes = Req.size(); // Exactly at the limit.
  std::string Lf = serveStream(Req + "\n", Config);
  std::string CrLf = serveStream(Req + "\r\n", Config);
  EXPECT_NE(Lf.find("{\"id\":1,\"ok\":true"), std::string::npos);
  EXPECT_EQ(Lf, CrLf); // limit and limit+'\r' are both within budget...
  Config.ProtoLim.MaxRequestBytes = Req.size() - 1; // ...limit+1 is not,
  std::string Over = serveStream(Req + "\n", Config);
  EXPECT_NE(Over.find("request exceeds byte limit"), std::string::npos);
  EXPECT_EQ(serveStream(Req + "\r\n", Config), Over); // with either framing.
}

TEST(Server, StatsInvariantHoldsAfterRestartWarm) {
  TempDir T;
  std::string Req = "{\"id\":1,\"method\":\"analyze\",\"params\":"
                    "{\"source\":\"int rw(int *p) { return *p; }\","
                    "\"name\":\"t.c\"}}\n";
  ServerConfig Config;
  Config.SpillDir = T.Dir.string();
  serveStream(Req, Config); // Cold: miss + insert + spill write.
  // "Restart": a fresh server over the same spill directory. The replay
  // promotes from disk -- a hit, never an insert -- so the stats response
  // keeps inserts <= misses after restart-warm workloads.
  Server S(Config);
  std::istringstream In(Req + "{\"id\":2,\"method\":\"stats\"}\n");
  std::ostringstream Out;
  EXPECT_EQ(S.run(In, Out), 0);
  CacheStats CS = S.cache().stats();
  EXPECT_EQ(CS.Hits, 1u);
  EXPECT_EQ(CS.Misses, 0u);
  EXPECT_EQ(CS.Inserts, 0u);
  EXPECT_EQ(CS.Promotions, 1u);
  EXPECT_LE(CS.Inserts, CS.Misses);
  EXPECT_NE(Out.str().find("\"promotions\":1"), std::string::npos);
}

TEST(Server, WarmManifestPreAnalyzesListedFiles) {
  TempDir T;
  std::string CPath = (T.Dir / "warm.c").string();
  std::string QPath = (T.Dir / "warm.q").string();
  {
    std::ofstream C(CPath, std::ios::binary);
    C << "int w(int *p) { return *p; }\n";
    std::ofstream Q(QPath, std::ios::binary);
    Q << "let x = ref 1 in !x ni\n";
  }
  std::string Manifest = (T.Dir / "corpus.txt").string();
  {
    std::ofstream M(Manifest, std::ios::binary);
    M << "# corpus\n\n" << CPath << "\n" << QPath << "\n"
      << (T.Dir / "missing.c").string() << "\n";
  }
  ServerConfig Config;
  Config.Jobs = 2; // Warm-up runs on the shared worker pool.
  Server S(Config);
  WarmStats WS;
  std::string Error;
  ASSERT_TRUE(S.warmFromManifest(Manifest, WS, Error)) << Error;
  EXPECT_EQ(WS.Listed, 3u);
  EXPECT_EQ(WS.Warmed, 2u);
  EXPECT_EQ(WS.AlreadyCached, 0u);
  EXPECT_EQ(WS.Failed, 1u);
  // The first client request for a warmed file is a cache hit (the .q
  // entry was warmed under the lambda pipeline, which is what a client
  // asking for language lambda keys to).
  std::istringstream In(
      "{\"id\":1,\"method\":\"analyze\",\"params\":{\"path\":\"" + CPath +
      "\"}}\n"
      "{\"id\":2,\"method\":\"analyze\",\"params\":{\"path\":\"" + QPath +
      "\",\"language\":\"lambda\"}}\n");
  std::ostringstream Out;
  EXPECT_EQ(S.run(In, Out), 0);
  EXPECT_NE(Out.str().find("{\"id\":1,\"ok\":true,\"exit\":0"),
            std::string::npos);
  EXPECT_NE(Out.str().find("{\"id\":2,\"ok\":true,\"exit\":0"),
            std::string::npos);
  CacheStats CS = S.cache().stats();
  EXPECT_EQ(CS.Misses, 2u); // The warm-up's own misses.
  EXPECT_EQ(CS.Hits, 2u);   // Both client requests hit warm.
  // An unreadable manifest is the only hard failure.
  EXPECT_FALSE(
      S.warmFromManifest((T.Dir / "no-such-manifest").string(), WS, Error));
  EXPECT_NE(Error.find("warm manifest"), std::string::npos);
}

TEST(Server, AnalyzeReadsFilesAndReportsMissingOnes) {
  TempDir T;
  std::string Path = (T.Dir / "prog.c").string();
  {
    std::ofstream F(Path, std::ios::binary);
    F << "int g(int *p) { return *p; }\n";
  }
  std::string Out = serveStream(
      "{\"id\":1,\"method\":\"analyze\",\"params\":{\"path\":\"" + Path +
      "\"}}\n"
      "{\"id\":2,\"method\":\"analyze\",\"params\":{\"path\":\"" + Path +
      ".missing\"}}\n");
  EXPECT_NE(Out.find("{\"id\":1,\"ok\":true,\"exit\":0"),
            std::string::npos);
  EXPECT_NE(Out.find("{\"id\":2,\"ok\":false"), std::string::npos);
  EXPECT_NE(Out.find("cannot read"), std::string::npos);
}

TEST(Server, InvalidateByHashDropsAllConfigsOfThatSource) {
  ServerConfig Config;
  Server S(Config);
  // Analyze the same bytes under two configs, then invalidate by the hash
  // the response reported.
  std::string Src = "int h(int *p) { return *p; }";
  char HashHex[32];
  std::snprintf(HashHex, sizeof(HashHex), "%016llx",
                static_cast<unsigned long long>(hashString(Src)));
  std::istringstream In(
      "{\"id\":1,\"method\":\"analyze\",\"params\":{\"source\":\"" + Src +
      "\",\"name\":\"a.c\"}}\n"
      "{\"id\":2,\"method\":\"analyze\",\"params\":{\"source\":\"" + Src +
      "\",\"name\":\"a.c\",\"mono\":true}}\n"
      "{\"id\":3,\"method\":\"invalidate\",\"params\":{\"hash\":\"" +
      std::string(HashHex) + "\"}}\n");
  std::ostringstream Out;
  EXPECT_EQ(S.run(In, Out), 0);
  EXPECT_NE(Out.str().find("\"hash\":\"" + std::string(HashHex) + "\""),
            std::string::npos);
  EXPECT_NE(Out.str().find("{\"id\":3,\"ok\":true,\"dropped\":2}"),
            std::string::npos);
  EXPECT_EQ(S.cache().stats().Entries, 0u);
}

TEST(Server, ShutdownAnswersThenStops) {
  std::string Out = serveStream("{\"id\":1,\"method\":\"shutdown\"}\n"
                          "{\"id\":2,\"method\":\"stats\"}\n");
  EXPECT_EQ(Out, "{\"id\":1,\"ok\":true}\n"); // Nothing after shutdown.
}

TEST(Server, MakeErrorResponseShapes) {
  EXPECT_EQ(makeErrorResponse(true, 5, "boom"),
            "{\"id\":5,\"ok\":false,\"error\":\"boom\"}\n");
  EXPECT_EQ(makeErrorResponse(false, 0, "x\"y"),
            "{\"id\":null,\"ok\":false,\"error\":\"x\\\"y\"}\n");
}

//===----------------------------------------------------------------------===//
// serve/Server telemetry
//===----------------------------------------------------------------------===//

namespace {

std::vector<std::string> splitLines(const std::string &Text) {
  std::vector<std::string> Lines;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Nl = Text.find('\n', Pos);
    if (Nl == std::string::npos)
      Nl = Text.size();
    Lines.push_back(Text.substr(Pos, Nl - Pos));
    Pos = Nl + 1;
  }
  return Lines;
}

const std::string kAnalyzeT =
    "{\"id\":1,\"method\":\"analyze\",\"params\":"
    "{\"source\":\"int f(int *p) { return *p; }\",\"name\":\"t.c\"}}\n";

} // namespace

TEST(Server, MetricsRequestReturnsLiveHistograms) {
  // Histograms live in the process-global registry; start from zero so the
  // counts below are exact regardless of what ran before in this binary.
  MetricsRegistry::global().resetValues();
  std::string Req = kAnalyzeT;
  Req += "{\"id\":2,\"method\":\"analyze\",\"params\":"
         "{\"source\":\"int f(int *p) { return *p; }\",\"name\":\"t.c\"}}\n";
  Req += "{\"id\":3,\"method\":\"metrics\"}\n";
  std::vector<std::string> Lines = splitLines(serveStream(Req));
  ASSERT_EQ(Lines.size(), 3u);

  JsonValue V = parseOk(Lines[2]);
  ASSERT_EQ(V.kind(), JsonValue::Kind::Object);
  EXPECT_EQ(V.find("id")->asNumber(), 3.0);
  EXPECT_TRUE(V.find("ok")->asBool());
  const JsonValue *Metrics = V.find("metrics");
  ASSERT_NE(Metrics, nullptr);
  const JsonValue *Hists = Metrics->find("histograms");
  ASSERT_NE(Hists, nullptr);

  const JsonValue *Lat = Hists->find("server.latency.analyze");
  ASSERT_NE(Lat, nullptr);
  EXPECT_EQ(Lat->find("count")->asNumber(), 2.0);
  // The non-empty buckets must account for every recorded sample.
  const JsonValue *Buckets = Lat->find("buckets");
  ASSERT_NE(Buckets, nullptr);
  double BucketTotal = 0;
  for (const JsonValue &B : Buckets->elements()) {
    ASSERT_EQ(B.elements().size(), 3u); // [lo, hi, count]
    BucketTotal += B.elements()[2].asNumber();
  }
  EXPECT_EQ(BucketTotal, 2.0);
  // Both analyzes ran inline (-j1): queue_wait recorded as zero wait.
  const JsonValue *Queue = Hists->find("server.queue_wait");
  ASSERT_NE(Queue, nullptr);
  EXPECT_EQ(Queue->find("count")->asNumber(), 2.0);
  EXPECT_EQ(Queue->find("max")->asNumber(), 0.0);
}

TEST(Server, StatsLatencyBlockGatedOnTelemetry) {
  MetricsRegistry::global().resetValues();
  std::string Req = kAnalyzeT + "{\"id\":2,\"method\":\"stats\"}\n";

  // Telemetry on (the default): stats carries the latency block.
  JsonValue On = parseOk(splitLines(serveStream(Req)).at(1));
  const JsonValue *Lat = On.find("latency");
  ASSERT_NE(Lat, nullptr);
  const JsonValue *Analyze = Lat->find("analyze");
  ASSERT_NE(Analyze, nullptr);
  EXPECT_EQ(Analyze->find("count")->asNumber(), 1.0);
  ASSERT_NE(Analyze->find("p50_us"), nullptr);
  ASSERT_NE(Analyze->find("p99_us"), nullptr);
  // The stats histogram is recorded *after* its response is built, so the
  // first stats request reports itself as count 0.
  EXPECT_EQ(Lat->find("stats")->find("count")->asNumber(), 0.0);

  // Telemetry off: the block is absent and the rest of stats is intact.
  ServerConfig Dark;
  Dark.Telemetry = false;
  JsonValue Off = parseOk(splitLines(serveStream(Req, Dark)).at(1));
  EXPECT_TRUE(Off.find("ok")->asBool());
  EXPECT_EQ(Off.find("latency"), nullptr);
  EXPECT_NE(Off.find("cache"), nullptr);
}

TEST(Server, TelemetryNeverAltersResponseBytes) {
  // The determinism contract: histograms, the request log, and --slow-ms
  // may not change a single response byte. (stats/metrics responses embed
  // live telemetry by design, so the stream here is the pure-function
  // subset: analyze, invalidate, shutdown.)
  std::string Req = kAnalyzeT;
  Req += "{\"id\":2,\"method\":\"analyze\",\"params\":"
         "{\"source\":\"int g(int *p) { *p = 1; return 0; }\","
         "\"name\":\"u.c\"}}\n";
  Req += kAnalyzeT; // Warm repeat: exercises the cache-hit path too.
  Req += "{\"id\":4,\"method\":\"invalidate\"}\n";
  Req += "{\"id\":5,\"method\":\"shutdown\"}\n";

  std::string Baseline = serveStream(Req);

  ServerConfig Dark;
  Dark.Telemetry = false;
  EXPECT_EQ(serveStream(Req, Dark), Baseline);

  std::ostringstream Sink;
  ServerConfig Logged;
  Logged.RequestLogStream = &Sink;
  Logged.SlowMicros = 1; // Tag (nearly) everything; bytes must not move.
  EXPECT_EQ(serveStream(Req, Logged), Baseline);
  EXPECT_EQ(splitLines(Sink.str()).size(), 5u);
}

TEST(Server, RequestLogEmitsOneEventPerRequestInOrder) {
  std::ostringstream Sink;
  ServerConfig Config;
  Config.RequestLogStream = &Sink;

  std::string Req = kAnalyzeT; // Cold: cache miss, phase breakdown.
  Req += kAnalyzeT;            // Warm: cache hit, no phases.
  Req += "this is not json\n";
  Req += "{\"id\":3,\"method\":\"invalidate\"}\n";
  Req += "{\"id\":4,\"method\":\"stats\"}\n";
  Req += "{\"id\":5,\"method\":\"shutdown\"}\n";
  serveStream(Req, Config);

  std::vector<std::string> Lines = splitLines(Sink.str());
  ASSERT_EQ(Lines.size(), 6u);
  const char *Methods[] = {"analyze",    "analyze", "invalid",
                           "invalidate", "stats",   "shutdown"};
  for (size_t I = 0; I != Lines.size(); ++I) {
    JsonValue Ev = parseOk(Lines[I]);
    ASSERT_EQ(Ev.kind(), JsonValue::Kind::Object) << Lines[I];
    // Inline serving completes in arrival order, so seq is 1..N here.
    EXPECT_EQ(Ev.find("seq")->asNumber(), static_cast<double>(I + 1));
    EXPECT_EQ(Ev.find("method")->asString(), Methods[I]);
    EXPECT_EQ(Ev.find("ok")->asBool(), I != 2);
    ASSERT_NE(Ev.find("bytes_in"), nullptr);
    ASSERT_NE(Ev.find("bytes_out"), nullptr);
    ASSERT_NE(Ev.find("service_us"), nullptr);
    EXPECT_GT(Ev.find("bytes_out")->asNumber(), 0.0);
  }

  JsonValue Miss = parseOk(Lines[0]);
  EXPECT_EQ(Miss.find("cache")->asString(), "miss");
  EXPECT_EQ(Miss.find("exit")->asNumber(), 0.0);
  EXPECT_EQ(Miss.find("hash")->asString().size(), 8u);
  const JsonValue *Phases = Miss.find("phases");
  ASSERT_NE(Phases, nullptr);
  EXPECT_NE(Phases->find("solve"), nullptr);

  JsonValue Hit = parseOk(Lines[1]);
  EXPECT_EQ(Hit.find("cache")->asString(), "hit");
  EXPECT_EQ(Hit.find("hash")->asString(), Miss.find("hash")->asString());
  EXPECT_EQ(Hit.find("phases"), nullptr); // Replays skip the pipeline.

  JsonValue Invalid = parseOk(Lines[2]);
  EXPECT_TRUE(Invalid.find("id")->isNull());
}

TEST(Server, RequestLogRenderHasFixedKeyOrder) {
  RequestLogEvent Ev;
  Ev.Seq = 3;
  Ev.HasId = true;
  Ev.Id = 7;
  Ev.Method = "analyze-delta";
  Ev.Ok = true;
  Ev.HasExit = true;
  Ev.Exit = 1;
  Ev.HashPrefix = "deadbeef";
  Ev.Cache = "miss";
  Ev.Snapshot = "hit";
  Ev.Delta = "incremental";
  Ev.BytesIn = 120;
  Ev.BytesOut = 64;
  Ev.QueueUs = 5;
  Ev.ServiceUs = 240;
  Ev.Slow = true;
  Ev.PhasesUs = {{"parse", 57}, {"solve", 3}};
  EXPECT_EQ(RequestLog::render(Ev),
            "{\"seq\":3,\"id\":7,\"method\":\"analyze-delta\",\"ok\":true,"
            "\"exit\":1,\"hash\":\"deadbeef\",\"cache\":\"miss\","
            "\"snapshot\":\"hit\",\"delta\":\"incremental\",\"bytes_in\":120,"
            "\"bytes_out\":64,\"queue_us\":5,\"service_us\":240,\"slow\":true,"
            "\"phases\":{\"parse\":57,\"solve\":3}}");

  RequestLogEvent Min;
  Min.Seq = 1;
  Min.Method = "invalid";
  EXPECT_EQ(RequestLog::render(Min),
            "{\"seq\":1,\"id\":null,\"method\":\"invalid\",\"ok\":false,"
            "\"bytes_in\":0,\"bytes_out\":0,\"queue_us\":0,\"service_us\":0}");
}

TEST(Server, RequestLogSlowThresholdTagsOnCommit) {
  std::ostringstream Sink;
  RequestLog Log(&Sink, /*SlowMicros=*/100);
  RequestLogEvent Fast;
  Fast.Seq = 1;
  Fast.Method = "analyze";
  Fast.ServiceUs = 99;
  Log.write(Fast);
  RequestLogEvent Slow;
  Slow.Seq = 2;
  Slow.Method = "analyze";
  Slow.ServiceUs = 100; // Threshold is inclusive.
  Log.write(Slow);
  std::vector<std::string> Lines = splitLines(Sink.str());
  ASSERT_EQ(Lines.size(), 2u);
  EXPECT_EQ(Lines[0].find("\"slow\""), std::string::npos);
  EXPECT_NE(Lines[1].find("\"slow\":true"), std::string::npos);

  // SlowMicros == 0 (the default / --slow-ms absent) never tags.
  std::ostringstream Sink2;
  RequestLog Untagged(&Sink2, 0);
  RequestLogEvent Ev;
  Ev.Seq = 1;
  Ev.Method = "stats";
  Ev.ServiceUs = 1u << 30;
  Untagged.write(Ev);
  EXPECT_EQ(Sink2.str().find("\"slow\""), std::string::npos);
}

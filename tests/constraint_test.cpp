//===- tests/constraint_test.cpp - Constraint solver unit tests -----------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the atomic constraint solver of Section 3.1: least/greatest
/// solutions, satisfiability, masked (well-formedness) constraints,
/// incremental solving, and provenance explanations.
///
//===----------------------------------------------------------------------===//

#include "qual/ConstraintSystem.h"

#include <gtest/gtest.h>

using namespace quals;

namespace {

class ConstraintTest : public ::testing::Test {
protected:
  QualifierSet QS;
  QualifierId Const, Tainted, Nonzero;

  void SetUp() override {
    Const = QS.add("const", Polarity::Positive);
    Tainted = QS.add("tainted", Polarity::Positive);
    Nonzero = QS.add("nonzero", Polarity::Negative);
  }

  QualExpr constOf(LatticeValue V) { return QualExpr::makeConst(V); }
  LatticeValue just(QualifierId Q) { return QS.valueWithPresent({Q}); }
};

TEST_F(ConstraintTest, UnconstrainedVarIsFullyFree) {
  ConstraintSystem Sys(QS);
  QualVarId V = Sys.freshVar("v");
  EXPECT_TRUE(Sys.solve());
  EXPECT_EQ(Sys.lower(V), QS.bottom());
  EXPECT_EQ(Sys.upper(V), QS.top());
  EXPECT_TRUE(Sys.mayHave(V, Const));
  EXPECT_FALSE(Sys.mustHave(V, Const));
}

TEST_F(ConstraintTest, LowerBoundPropagatesThroughChain) {
  ConstraintSystem Sys(QS);
  QualVarId A = Sys.freshVar("a"), B = Sys.freshVar("b"),
            C = Sys.freshVar("c");
  Sys.addLeq(constOf(just(Const)), QualExpr::makeVar(A), {"decl"});
  Sys.addLeq(QualExpr::makeVar(A), QualExpr::makeVar(B), {"a<=b"});
  Sys.addLeq(QualExpr::makeVar(B), QualExpr::makeVar(C), {"b<=c"});
  ASSERT_TRUE(Sys.solve());
  EXPECT_TRUE(Sys.mustHave(C, Const));
  EXPECT_TRUE(Sys.mustHave(B, Const));
}

TEST_F(ConstraintTest, UpperBoundPropagatesBackwards) {
  ConstraintSystem Sys(QS);
  QualVarId A = Sys.freshVar("a"), B = Sys.freshVar("b");
  Sys.addLeq(QualExpr::makeVar(A), QualExpr::makeVar(B), {"a<=b"});
  Sys.addLeq(QualExpr::makeVar(B), constOf(QS.notQual(Const)), {"b!const"});
  ASSERT_TRUE(Sys.solve());
  EXPECT_FALSE(Sys.mayHave(A, Const));
  EXPECT_FALSE(Sys.mayHave(B, Const));
}

TEST_F(ConstraintTest, ConflictingBoundsAreUnsatisfiable) {
  ConstraintSystem Sys(QS);
  QualVarId A = Sys.freshVar("a");
  Sys.addLeq(constOf(just(Const)), QualExpr::makeVar(A), {"must be const"});
  Sys.addLeq(QualExpr::makeVar(A), constOf(QS.notQual(Const)),
             {"must not be const"});
  EXPECT_FALSE(Sys.isSatisfiable());
  Sys.solve();
  std::vector<Violation> Vs = Sys.collectViolations();
  ASSERT_EQ(Vs.size(), 1u);
  EXPECT_EQ(Vs[0].OffendingBits, QS.bitFor(Const));
}

TEST_F(ConstraintTest, ViolationThroughLongChainIsExplained) {
  ConstraintSystem Sys(QS);
  QualVarId V0 = Sys.freshVar("v0");
  Sys.addLeq(constOf(just(Tainted)), QualExpr::makeVar(V0), {"source"});
  QualVarId Prev = V0;
  for (int I = 1; I != 20; ++I) {
    QualVarId Next = Sys.freshVar("v" + std::to_string(I));
    Sys.addLeq(QualExpr::makeVar(Prev), QualExpr::makeVar(Next),
               {"hop " + std::to_string(I)});
    Prev = Next;
  }
  Sys.addLeq(QualExpr::makeVar(Prev), constOf(QS.notQual(Tainted)),
             {"sink must be untainted"});
  Sys.solve();
  std::vector<Violation> Vs = Sys.collectViolations();
  ASSERT_EQ(Vs.size(), 1u);
  std::string Explanation = Sys.explain(Vs[0]);
  EXPECT_NE(Explanation.find("sink must be untainted"), std::string::npos);
  EXPECT_NE(Explanation.find("hop 19"), std::string::npos);
  EXPECT_NE(Explanation.find("source"), std::string::npos);
  EXPECT_NE(Explanation.find("tainted"), std::string::npos);
}

TEST_F(ConstraintTest, EqualityForcesBothDirections) {
  ConstraintSystem Sys(QS);
  QualVarId A = Sys.freshVar("a"), B = Sys.freshVar("b");
  Sys.addEq(QualExpr::makeVar(A), QualExpr::makeVar(B), {"a=b"});
  Sys.addLeq(constOf(just(Const)), QualExpr::makeVar(A), {"const a"});
  ASSERT_TRUE(Sys.solve());
  EXPECT_TRUE(Sys.mustHave(B, Const));
  Sys.addLeq(QualExpr::makeVar(B), constOf(QS.notQual(Const)), {"b !const"});
  EXPECT_FALSE(Sys.isSatisfiable());
}

TEST_F(ConstraintTest, MaskedConstraintOnlyTouchesMaskedComponent) {
  ConstraintSystem Sys(QS);
  QualVarId A = Sys.freshVar("a"), B = Sys.freshVar("b");
  // Propagate only the tainted component from a to b.
  Sys.addLeqMasked(QualExpr::makeVar(A), QualExpr::makeVar(B),
                   QS.bitFor(Tainted), {"taint only"});
  Sys.addLeq(constOf(just(Const).join(just(Tainted))), QualExpr::makeVar(A),
             {"a is const+tainted"});
  ASSERT_TRUE(Sys.solve());
  EXPECT_TRUE(Sys.mustHave(B, Tainted));
  EXPECT_FALSE(Sys.mustHave(B, Const)); // const did not cross the mask
}

TEST_F(ConstraintTest, MaskedUpperBoundLeavesOtherComponentsFree) {
  ConstraintSystem Sys(QS);
  QualVarId A = Sys.freshVar("a");
  Sys.addLeqMasked(QualExpr::makeVar(A), constOf(QS.bottom()),
                   QS.bitFor(Const), {"const forbidden"});
  ASSERT_TRUE(Sys.solve());
  EXPECT_FALSE(Sys.mayHave(A, Const));
  EXPECT_TRUE(Sys.mayHave(A, Tainted));
}

TEST_F(ConstraintTest, ConstConstViolationDetected) {
  ConstraintSystem Sys(QS);
  Sys.addLeq(constOf(just(Const)), constOf(QS.bottom()), {"impossible"});
  Sys.solve();
  EXPECT_EQ(Sys.collectViolations().size(), 1u);
  ConstraintSystem Sys2(QS);
  Sys2.addLeq(constOf(QS.bottom()), constOf(just(Const)), {"fine"});
  EXPECT_TRUE(Sys2.isSatisfiable());
}

TEST_F(ConstraintTest, IncrementalSolveSeesNewConstraints) {
  ConstraintSystem Sys(QS);
  QualVarId A = Sys.freshVar("a"), B = Sys.freshVar("b");
  Sys.addLeq(QualExpr::makeVar(A), QualExpr::makeVar(B), {"a<=b"});
  ASSERT_TRUE(Sys.solve());
  EXPECT_FALSE(Sys.mustHave(B, Const));
  // Add a lower bound after the first solve; it must still reach B.
  Sys.addLeq(constOf(just(Const)), QualExpr::makeVar(A), {"late decl"});
  ASSERT_TRUE(Sys.solve());
  EXPECT_TRUE(Sys.mustHave(B, Const));
}

TEST_F(ConstraintTest, IncrementalEdgeAfterLowerBound) {
  ConstraintSystem Sys(QS);
  QualVarId A = Sys.freshVar("a");
  Sys.addLeq(constOf(just(Const)), QualExpr::makeVar(A), {"decl"});
  ASSERT_TRUE(Sys.solve());
  // New edge added later must pick up A's existing lower bound.
  QualVarId B = Sys.freshVar("b");
  Sys.addLeq(QualExpr::makeVar(A), QualExpr::makeVar(B), {"late edge"});
  ASSERT_TRUE(Sys.solve());
  EXPECT_TRUE(Sys.mustHave(B, Const));
}

TEST_F(ConstraintTest, IncrementalUpperBoundAfterEdges) {
  ConstraintSystem Sys(QS);
  QualVarId A = Sys.freshVar("a"), B = Sys.freshVar("b");
  Sys.addLeq(QualExpr::makeVar(A), QualExpr::makeVar(B), {"a<=b"});
  ASSERT_TRUE(Sys.solve());
  Sys.addLeq(QualExpr::makeVar(B), constOf(QS.notQual(Tainted)),
             {"late bound"});
  ASSERT_TRUE(Sys.solve());
  EXPECT_FALSE(Sys.mayHave(A, Tainted));
}

TEST_F(ConstraintTest, CyclesConverge) {
  ConstraintSystem Sys(QS);
  QualVarId A = Sys.freshVar("a"), B = Sys.freshVar("b"),
            C = Sys.freshVar("c");
  Sys.addLeq(QualExpr::makeVar(A), QualExpr::makeVar(B), {"a<=b"});
  Sys.addLeq(QualExpr::makeVar(B), QualExpr::makeVar(C), {"b<=c"});
  Sys.addLeq(QualExpr::makeVar(C), QualExpr::makeVar(A), {"c<=a"});
  Sys.addLeq(constOf(just(Const)), QualExpr::makeVar(B), {"seed"});
  ASSERT_TRUE(Sys.solve());
  EXPECT_TRUE(Sys.mustHave(A, Const));
  EXPECT_TRUE(Sys.mustHave(B, Const));
  EXPECT_TRUE(Sys.mustHave(C, Const));
}

TEST_F(ConstraintTest, DiamondJoinsBothSources) {
  ConstraintSystem Sys(QS);
  QualVarId S1 = Sys.freshVar("s1"), S2 = Sys.freshVar("s2"),
            T = Sys.freshVar("t");
  Sys.addLeq(constOf(just(Const)), QualExpr::makeVar(S1), {"c"});
  Sys.addLeq(constOf(just(Tainted)), QualExpr::makeVar(S2), {"t"});
  Sys.addLeq(QualExpr::makeVar(S1), QualExpr::makeVar(T), {"s1<=t"});
  Sys.addLeq(QualExpr::makeVar(S2), QualExpr::makeVar(T), {"s2<=t"});
  ASSERT_TRUE(Sys.solve());
  EXPECT_TRUE(Sys.mustHave(T, Const));
  EXPECT_TRUE(Sys.mustHave(T, Tainted));
}

TEST_F(ConstraintTest, NegativeQualifierMustMayLogic) {
  ConstraintSystem Sys(QS);
  QualVarId A = Sys.freshVar("a");
  // Unconstrained: may be nonzero (bit clear in lower), but not must.
  ASSERT_TRUE(Sys.solve());
  EXPECT_TRUE(Sys.mayHave(A, Nonzero));
  EXPECT_FALSE(Sys.mustHave(A, Nonzero));
  // Force nonzero present everywhere: upper bound excluding its bit.
  Sys.addLeq(QualExpr::makeVar(A), constOf(LatticeValue(QS.usedBits() &
                                                        ~QS.bitFor(Nonzero))),
             {"always nonzero"});
  ASSERT_TRUE(Sys.solve());
  EXPECT_TRUE(Sys.mustHave(A, Nonzero));
}

TEST_F(ConstraintTest, LargeRandomSystemSolvesAndAgreesWithNaive) {
  // Compare against a naive O(n^2) fixpoint on a pseudo-random DAG.
  ConstraintSystem Sys(QS);
  constexpr unsigned N = 500;
  std::vector<QualVarId> V;
  for (unsigned I = 0; I != N; ++I)
    V.push_back(Sys.freshVar("v" + std::to_string(I)));

  // Deterministic pseudo-random generator (no global state).
  uint64_t State = 12345;
  auto Rand = [&State]() {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    return State >> 33;
  };

  struct Edge {
    unsigned From, To;
  };
  std::vector<Edge> Edges;
  std::vector<uint64_t> Seed(N, 0);
  for (unsigned I = 0; I != 2000; ++I) {
    unsigned A = Rand() % N, B = Rand() % N;
    if (A == B)
      continue;
    Edges.push_back({A, B});
    Sys.addLeq(QualExpr::makeVar(V[A]), QualExpr::makeVar(V[B]), {"edge"});
  }
  for (unsigned I = 0; I != 50; ++I) {
    unsigned A = Rand() % N;
    uint64_t Bits = Rand() % 8;
    Seed[A] |= Bits;
    Sys.addLeq(QualExpr::makeConst(LatticeValue(Bits)),
               QualExpr::makeVar(V[A]), {"seed"});
  }
  ASSERT_TRUE(Sys.solve());

  // Naive fixpoint.
  std::vector<uint64_t> Naive = Seed;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const Edge &E : Edges) {
      uint64_t New = Naive[E.To] | Naive[E.From];
      if (New != Naive[E.To]) {
        Naive[E.To] = New;
        Changed = true;
      }
    }
  }
  for (unsigned I = 0; I != N; ++I)
    EXPECT_EQ(Sys.lower(V[I]).bits(), Naive[I]) << "var " << I;
}

} // namespace

//===- tests/cfront_edge_test.cpp - C front-end edge cases ----------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Second-round coverage for the C front end: gnarlier declarators,
/// statement corners, expression precedence, recovery, and the exact type
/// shapes the const inference depends on.
///
//===----------------------------------------------------------------------===//

#include "cfront/CParser.h"
#include "cfront/CSema.h"

#include <gtest/gtest.h>

using namespace quals;
using namespace quals::cfront;

namespace {

struct ERig {
  SourceManager SM;
  DiagnosticEngine Diags{SM};
  CAstContext Ast;
  CTypeContext Types;
  StringInterner Idents;
  TranslationUnit TU;

  bool parse(const std::string &Source) {
    return parseCSource(SM, "edge.c", Source, Ast, Types, Idents, Diags, TU);
  }
  bool sema(const std::string &Source) {
    if (!parse(Source))
      return false;
    CSema S(Ast, Types, Idents, Diags);
    return S.analyze(TU);
  }
  VarDecl *global(std::string_view Name) {
    auto It = TU.GlobalMap.find(Name);
    return It == TU.GlobalMap.end() ? nullptr : It->second;
  }
};

//===----------------------------------------------------------------------===//
// Declarators
//===----------------------------------------------------------------------===//

TEST(CFrontEdge, PointerToPointerToConst) {
  ERig R;
  ASSERT_TRUE(R.parse("const char **argv;"));
  const auto *P1 = dyn_cast<PointerType>(R.global("argv")->getType().getType());
  ASSERT_NE(P1, nullptr);
  const auto *P2 = dyn_cast<PointerType>(P1->getPointee().getType());
  ASSERT_NE(P2, nullptr);
  EXPECT_TRUE(P2->getPointee().isConst());
}

TEST(CFrontEdge, ConstPointerToConst) {
  ERig R;
  ASSERT_TRUE(R.parse("const int * const cp = 0;"));
  VarDecl *V = R.global("cp");
  EXPECT_TRUE(V->getType().isConst()); // the pointer itself
  const auto *P = cast<PointerType>(V->getType().getType());
  EXPECT_TRUE(P->getPointee().isConst()); // and the pointee
}

TEST(CFrontEdge, ArrayOfFunctionPointers) {
  ERig R;
  ASSERT_TRUE(R.parse("int (*handlers[8])(int);"));
  const auto *A = dyn_cast<ArrayType>(R.global("handlers")->getType().getType());
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(A->getSize(), 8);
  const auto *P = dyn_cast<PointerType>(A->getElement().getType());
  ASSERT_NE(P, nullptr);
  EXPECT_TRUE(isa<FunctionType>(P->getPointee().getType()));
}

TEST(CFrontEdge, FunctionReturningFunctionPointer) {
  ERig R;
  ASSERT_TRUE(R.parse("int (*pick(int which))(char);"));
  auto It = R.TU.FunctionMap.find("pick");
  ASSERT_NE(It, R.TU.FunctionMap.end());
  const FunctionType *FT = It->second->getType();
  const auto *RetPtr = dyn_cast<PointerType>(FT->getReturn().getType());
  ASSERT_NE(RetPtr, nullptr);
  EXPECT_TRUE(isa<FunctionType>(RetPtr->getPointee().getType()));
}

TEST(CFrontEdge, EnumArraySizeFromConstant) {
  ERig R;
  ASSERT_TRUE(R.parse("enum { N = 4 }; int table[N];"));
  const auto *A = dyn_cast<ArrayType>(R.global("table")->getType().getType());
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(A->getSize(), 4);
}

TEST(CFrontEdge, NegativeAndSizeofConstants) {
  ERig R;
  ASSERT_TRUE(R.parse("enum e { A = -3, B, C = sizeof(int) };"));
  EXPECT_EQ(R.TU.EnumConstants.at("A"), -3);
  EXPECT_EQ(R.TU.EnumConstants.at("B"), -2);
  EXPECT_EQ(R.TU.EnumConstants.at("C"), 8); // sizeof approximated as 8
}

TEST(CFrontEdge, AnonymousStructAndUnion) {
  ERig R;
  ASSERT_TRUE(R.parse("struct { int a; } s1; union { int b; char c; } u1;"));
  EXPECT_TRUE(isa<RecordType>(R.global("s1")->getType().getType()));
  const auto *U = cast<RecordType>(R.global("u1")->getType().getType());
  EXPECT_TRUE(U->getDecl()->isUnion());
}

TEST(CFrontEdge, TypedefChains) {
  ERig R;
  ASSERT_TRUE(R.parse("typedef int base; typedef base *bp; "
                      "typedef bp *bpp; bpp deep;"));
  const auto *P1 = dyn_cast<PointerType>(R.global("deep")->getType().getType());
  ASSERT_NE(P1, nullptr);
  const auto *P2 = dyn_cast<PointerType>(P1->getPointee().getType());
  ASSERT_NE(P2, nullptr);
  EXPECT_TRUE(isa<BuiltinType>(P2->getPointee().getType()));
}

TEST(CFrontEdge, TypedefNameReusableAsMemberOrLocal) {
  // The "lexer hack" must be scoped: a typedef name can still appear as a
  // field name.
  ERig R;
  EXPECT_TRUE(R.sema("typedef int len; struct s { int len; };\n"
                     "int f(struct s *p) { return p->len; }"))
      << R.Diags.renderAll();
}

TEST(CFrontEdge, MultipleDeclaratorsMixKinds) {
  ERig R;
  ASSERT_TRUE(R.parse("int a, *b, c[3], (*d)(void);"));
  EXPECT_TRUE(isa<BuiltinType>(R.global("a")->getType().getType()));
  EXPECT_TRUE(isa<PointerType>(R.global("b")->getType().getType()));
  EXPECT_TRUE(isa<ArrayType>(R.global("c")->getType().getType()));
  EXPECT_TRUE(isa<PointerType>(R.global("d")->getType().getType()));
}

//===----------------------------------------------------------------------===//
// Statements and expressions
//===----------------------------------------------------------------------===//

TEST(CFrontEdge, ForWithCommaAndEmptySections) {
  ERig R;
  EXPECT_TRUE(R.sema(
      "int f(int n) {\n"
      "  int i, j;\n"
      "  for (i = 0, j = n; ; ) { if (i >= j) break; i++; }\n"
      "  for (;;) break;\n"
      "  return i;\n"
      "}"))
      << R.Diags.renderAll();
}

TEST(CFrontEdge, PrecedenceOfMixedOperators) {
  // 2 + 3 * 4 == 14, shifts bind looser than +, & looser than ==, etc.
  // The parser's shape is checked structurally via sema acceptance plus a
  // spot check of the tree.
  ERig R;
  ASSERT_TRUE(R.parse("int x = 2 + 3 * 4;"));
  const auto *Init = dyn_cast<CBinary>(R.global("x")->getInit());
  ASSERT_NE(Init, nullptr);
  EXPECT_EQ(Init->getOp(), BinaryOp::Add);
  const auto *Rhs = dyn_cast<CBinary>(Init->getRhs());
  ASSERT_NE(Rhs, nullptr);
  EXPECT_EQ(Rhs->getOp(), BinaryOp::Mul);
}

TEST(CFrontEdge, AssignmentIsRightAssociative) {
  ERig R;
  ASSERT_TRUE(R.sema("int f(void) { int a; int b; int c; a = b = c = 1; "
                     "return a; }"))
      << R.Diags.renderAll();
}

TEST(CFrontEdge, ConditionalNestsAndAssociates) {
  ERig R;
  EXPECT_TRUE(R.sema(
      "int f(int a, int b) { return a ? b ? 1 : 2 : b ? 3 : 4; }"))
      << R.Diags.renderAll();
}

TEST(CFrontEdge, CastVersusParenthesizedExpression) {
  // (x)(y) is a call when x is a variable, a cast when x is a type.
  ERig R;
  EXPECT_TRUE(R.sema(
      "typedef long word;\n"
      "int g(int v) { return v; }\n"
      "long f(int (*x)(int), int y) { return (word)(x)(y) + (word)y; }"))
      << R.Diags.renderAll();
}

TEST(CFrontEdge, SizeofExpressionAndType) {
  ERig R;
  EXPECT_TRUE(R.sema(
      "struct s { int a[4]; };\n"
      "unsigned long f(struct s *p) {\n"
      "  return sizeof(struct s) + sizeof p + sizeof *p + sizeof(int *);\n"
      "}"))
      << R.Diags.renderAll();
}

TEST(CFrontEdge, StringConcatenationAndEscapes) {
  ERig R;
  EXPECT_TRUE(R.sema(
      "char *f(void) { return \"part one \" \"part two\\n\"; }"))
      << R.Diags.renderAll();
}

TEST(CFrontEdge, NestedSwitchWithFallthrough) {
  ERig R;
  EXPECT_TRUE(R.sema(
      "int f(int a, int b) {\n"
      "  int r = 0;\n"
      "  switch (a) {\n"
      "  case 0:\n"
      "  case 1: r = 1; break;\n"
      "  case 2:\n"
      "    switch (b) { case 9: r = 9; break; default: r = 2; }\n"
      "    break;\n"
      "  default: r = -1;\n"
      "  }\n"
      "  return r;\n"
      "}"))
      << R.Diags.renderAll();
}

TEST(CFrontEdge, DoWhileAndNestedLoops) {
  ERig R;
  EXPECT_TRUE(R.sema(
      "int f(int n) {\n"
      "  int t = 0; int i = 0;\n"
      "  do {\n"
      "    int j;\n"
      "    for (j = 0; j < n; j++)\n"
      "      while (t < j) t++;\n"
      "    i++;\n"
      "  } while (i < n);\n"
      "  return t;\n"
      "}"))
      << R.Diags.renderAll();
}

TEST(CFrontEdge, LocalScopesShadow) {
  ERig R;
  EXPECT_TRUE(R.sema(
      "int f(int x) { { int *x; int y; x = &y; *x = 1; } return x; }"))
      << R.Diags.renderAll();
}

TEST(CFrontEdge, AddressOfFieldAndArrayElement) {
  ERig R;
  EXPECT_TRUE(R.sema(
      "struct s { int v; };\n"
      "int *f(struct s *p, int *a, int i) {\n"
      "  if (i) return &p->v;\n"
      "  return &a[i];\n"
      "}"))
      << R.Diags.renderAll();
}

TEST(CFrontEdge, CommaOperatorInCondition) {
  ERig R;
  EXPECT_TRUE(R.sema(
      "int f(int a) { int b; if ((b = a, b > 0)) return b; return 0; }"))
      << R.Diags.renderAll();
}

//===----------------------------------------------------------------------===//
// Error paths
//===----------------------------------------------------------------------===//

TEST(CFrontEdge, MissingSemicolonRecovers) {
  ERig R;
  EXPECT_FALSE(R.parse("int a = 1\nint b = 2;"));
  EXPECT_TRUE(R.Diags.hasErrors());
}

TEST(CFrontEdge, UnterminatedBlockCommentReported) {
  ERig R;
  EXPECT_FALSE(R.parse("int a; /* never closed"));
  EXPECT_TRUE(R.Diags.hasErrors());
}

TEST(CFrontEdge, CallingNonFunctionReported) {
  ERig R;
  EXPECT_FALSE(R.sema("int f(void) { int x; return x(3); }"));
}

TEST(CFrontEdge, ArrowOnNonPointerReported) {
  ERig R;
  EXPECT_FALSE(R.sema(
      "struct s { int v; }; int f(struct s x) { return x->v; }"));
}

TEST(CFrontEdge, DiagnosticsCarryLineNumbers) {
  ERig R;
  EXPECT_FALSE(R.sema("int f(void) {\n  return missing;\n}"));
  std::string Rendered = R.Diags.renderAll();
  EXPECT_NE(Rendered.find("edge.c:2"), std::string::npos) << Rendered;
}

} // namespace

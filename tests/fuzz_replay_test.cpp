//===- tests/fuzz_replay_test.cpp - Replay the checked-in fuzz corpus -----===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
//===----------------------------------------------------------------------===//
//
// Runs every file under fuzz/corpus/ through its fuzz handler, exactly as
// the libFuzzer executables would. The handlers promise to return (never
// crash) on arbitrary bytes, so each past crasher checked into the corpus
// stays a regression test in every normal build -- no fuzzer toolchain
// needed. Registered with ctest as `fuzz.replay_corpus`.
//
//===----------------------------------------------------------------------===//

#include "FuzzTargets.h"

#include "link/Qsum.h"

#include "gtest/gtest.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

namespace {

using Handler = int (*)(const uint8_t *, size_t);

/// Feeds every regular file under corpus/\p Subdir through \p Fn. A missing
/// or empty directory fails: it means the corpus was moved without updating
/// this test, which would silently stop replaying past crashers.
void replayDir(const char *Subdir, Handler Fn) {
  std::filesystem::path Dir =
      std::filesystem::path(QUALS_SOURCE_DIR) / "fuzz" / "corpus" / Subdir;
  ASSERT_TRUE(std::filesystem::is_directory(Dir))
      << "missing corpus directory " << Dir;
  unsigned NumReplayed = 0;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir)) {
    if (!Entry.is_regular_file())
      continue;
    std::ifstream In(Entry.path(), std::ios::binary);
    ASSERT_TRUE(In.good()) << "cannot read " << Entry.path();
    std::vector<char> Bytes((std::istreambuf_iterator<char>(In)),
                            std::istreambuf_iterator<char>());
    SCOPED_TRACE(Entry.path().string());
    EXPECT_EQ(0, Fn(reinterpret_cast<const uint8_t *>(Bytes.data()),
                    Bytes.size()));
    ++NumReplayed;
  }
  EXPECT_GT(NumReplayed, 0u) << "empty corpus directory " << Dir;
}

TEST(FuzzReplay, CFrontCorpus) { replayDir("cfront", quals::fuzz::runCFront); }

TEST(FuzzReplay, LambdaCorpus) { replayDir("lambda", quals::fuzz::runLambda); }

TEST(FuzzReplay, SolverCorpus) { replayDir("solver", quals::fuzz::runSolver); }

TEST(FuzzReplay, ProtocolCorpus) {
  replayDir("protocol", quals::fuzz::runProtocol);
}

TEST(FuzzReplay, SummaryCorpus) {
  replayDir("summary", quals::fuzz::runSummary);
}

/// The handlers also accept the empty input (libFuzzer always tries it).
TEST(FuzzReplay, EmptyInput) {
  EXPECT_EQ(0, quals::fuzz::runCFront(nullptr, 0));
  EXPECT_EQ(0, quals::fuzz::runLambda(nullptr, 0));
  EXPECT_EQ(0, quals::fuzz::runSolver(nullptr, 0));
  EXPECT_EQ(0, quals::fuzz::runProtocol(nullptr, 0));
  EXPECT_EQ(0, quals::fuzz::runSummary(nullptr, 0));
}

/// A deterministic mini-fuzz for toolchains without libFuzzer: random
/// byte blobs plus corpus-flavored mutations (truncation at every length
/// of a keyword-rich template). Far weaker than a real coverage-guided
/// run, but it keeps the "any bytes return cleanly" contract exercised
/// on every platform that runs ctest.
TEST(FuzzReplay, DeterministicRandomStress) {
  uint64_t State = 0x9e3779b97f4a7c15ULL;
  auto next = [&State]() {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    return State;
  };
  for (int Round = 0; Round != 200; ++Round) {
    std::vector<uint8_t> Bytes(next() % 300);
    for (uint8_t &B : Bytes)
      B = static_cast<uint8_t>(next());
    SCOPED_TRACE("random round " + std::to_string(Round));
    EXPECT_EQ(0, quals::fuzz::runCFront(Bytes.data(), Bytes.size()));
    EXPECT_EQ(0, quals::fuzz::runLambda(Bytes.data(), Bytes.size()));
    EXPECT_EQ(0, quals::fuzz::runSolver(Bytes.data(), Bytes.size()));
    EXPECT_EQ(0, quals::fuzz::runProtocol(Bytes.data(), Bytes.size()));
    EXPECT_EQ(0, quals::fuzz::runSummary(Bytes.data(), Bytes.size()));
  }

  const std::string CTemplate =
      "const struct s { int *p; } g; int f(int x) { return sizeof(g) + "
      "(x ? *g.p : 0x7fffffff); }";
  const std::string ProtocolTemplate =
      "{\"id\":1,\"method\":\"analyze\",\"params\":{\"source\":"
      "\"int f();\",\"name\":\"\\u00e9.c\",\"mono\":true}}";
  const std::string LambdaTemplate =
      "let r = {const} ref (fn x. if x then !r 1 else 0 fi) in r := fn "
      "y. y ni";
  for (size_t Len = 0; Len <= CTemplate.size(); ++Len)
    EXPECT_EQ(0, quals::fuzz::runCFront(
                     reinterpret_cast<const uint8_t *>(CTemplate.data()),
                     Len));
  for (size_t Len = 0; Len <= LambdaTemplate.size(); ++Len)
    EXPECT_EQ(0, quals::fuzz::runLambda(reinterpret_cast<const uint8_t *>(
                                            LambdaTemplate.data()),
                                        Len));
  for (size_t Len = 0; Len <= ProtocolTemplate.size(); ++Len)
    EXPECT_EQ(0, quals::fuzz::runProtocol(
                     reinterpret_cast<const uint8_t *>(
                         ProtocolTemplate.data()),
                     Len));

  // Summary template: a well-formed .qsum built through the real
  // serializer, swept through every truncation length and every
  // single-byte corruption -- the reader must reject or survive each one.
  quals::link::TuSummary Sum;
  Sum.ConfigHash = quals::link::summaryConfigHash();
  Sum.ContentHash = 0x1234;
  Sum.Strings = {"", "const", "tu.c", "f", "(i,)", "call of 'f'"};
  Sum.SourceName = 2;
  Sum.Qualifiers.push_back({1, 0});
  Sum.NumVars = 2;
  quals::link::QsumConstraint C;
  C.LhsIsVar = true;
  C.Lhs = 0;
  C.RhsIsVar = true;
  C.Rhs = 1;
  C.Mask = 1;
  C.Origin = {2, 1, 1, 5};
  Sum.Constraints.push_back(C);
  quals::link::QsumPos Pos;
  Pos.FnName = 3;
  Pos.ParamIndex = 0;
  Pos.Depth = 1;
  Pos.Var = 0;
  Sum.Positions.push_back(Pos);
  quals::link::QsumSymbol Sym;
  Sym.Name = 3;
  Sym.Shape = 4;
  Sym.Vars = {0, 1};
  Sum.FnExports.push_back(Sym);
  const std::string SummaryBytes = quals::link::serializeSummary(Sum);
  const uint8_t *SummaryData =
      reinterpret_cast<const uint8_t *>(SummaryBytes.data());
  for (size_t Len = 0; Len <= SummaryBytes.size(); ++Len)
    EXPECT_EQ(0, quals::fuzz::runSummary(SummaryData, Len));
  for (size_t Byte = 0; Byte != SummaryBytes.size(); ++Byte) {
    std::string Corrupt = SummaryBytes;
    Corrupt[Byte] = static_cast<char>(Corrupt[Byte] ^ 0x40);
    EXPECT_EQ(0, quals::fuzz::runSummary(
                     reinterpret_cast<const uint8_t *>(Corrupt.data()),
                     Corrupt.size()));
  }
}

} // namespace

//===- tests/transport_test.cpp - Socket transport tests -------------------===//
//
// Part of the libquals project, reproducing "A Theory of Type Qualifiers"
// (Foster, Fähndrich, Aiken; PLDI 1999).
//
// End-to-end coverage for serve/Transport: listen-spec parsing, multi-
// client byte identity against stdio, cross-connection invalidate and
// shutdown semantics, and socket-level hostile input (the hardening
// expectations of tests/hardening_test.cpp carried onto the wire).
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"
#include "serve/Transport.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <netdb.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace quals;
using namespace quals::serve;

namespace {

/// A fresh temp dir removed on scope exit (socket paths live here).
class TempDir {
public:
  TempDir() {
    Dir = std::filesystem::temp_directory_path() /
          ("quals_transport_test_" + std::to_string(::getpid()) + "_" +
           std::to_string(Counter++));
    std::filesystem::create_directories(Dir);
  }
  ~TempDir() {
    std::error_code Ec;
    std::filesystem::remove_all(Dir, Ec);
  }
  std::filesystem::path Dir;

private:
  static int Counter;
};

int TempDir::Counter = 0;

int connectUnix(const std::string &Path) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

/// Connects to a "HOST:PORT" bound name (what Transport::boundName gives).
int connectTcp(const std::string &HostPort) {
  size_t Colon = HostPort.rfind(':');
  std::string Host = HostPort.substr(0, Colon);
  std::string Port = HostPort.substr(Colon + 1);
  addrinfo Hints{};
  Hints.ai_family = AF_UNSPEC;
  Hints.ai_socktype = SOCK_STREAM;
  addrinfo *Res = nullptr;
  if (::getaddrinfo(Host == "0.0.0.0" ? "127.0.0.1" : Host.c_str(),
                    Port.c_str(), &Hints, &Res) != 0)
    return -1;
  int Fd = -1;
  for (addrinfo *Ai = Res; Ai; Ai = Ai->ai_next) {
    Fd = ::socket(Ai->ai_family, Ai->ai_socktype, Ai->ai_protocol);
    if (Fd < 0)
      continue;
    if (::connect(Fd, Ai->ai_addr, Ai->ai_addrlen) == 0)
      break;
    ::close(Fd);
    Fd = -1;
  }
  ::freeaddrinfo(Res);
  return Fd;
}

void sendAll(int Fd, const std::string &Bytes) {
  const char *P = Bytes.data();
  size_t N = Bytes.size();
  while (N) {
    ssize_t W = ::send(Fd, P, N, MSG_NOSIGNAL);
    if (W <= 0) {
      if (W < 0 && errno == EINTR)
        continue;
      return;
    }
    P += W;
    N -= static_cast<size_t>(W);
  }
}

/// Reads until \p Lines newlines have arrived (or EOF).
std::string recvLines(int Fd, size_t Lines) {
  std::string Out;
  size_t Seen = 0;
  char Buf[4096];
  while (Seen < Lines) {
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      break;
    for (ssize_t I = 0; I != N; ++I)
      if (Buf[I] == '\n')
        ++Seen;
    Out.append(Buf, static_cast<size_t>(N));
  }
  return Out;
}

std::string recvAll(int Fd) {
  std::string Out;
  char Buf[4096];
  for (;;) {
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      break;
    Out.append(Buf, static_cast<size_t>(N));
  }
  return Out;
}

/// A Server + unix-socket Transport serving on a background thread, torn
/// down via a real `shutdown` request (or stop()) at scope exit.
class LiveServer {
public:
  explicit LiveServer(ServerConfig Config = {}) : S(Config) {
    ListenSpec Spec;
    Spec.K = ListenSpec::Kind::Unix;
    Spec.Path = (Dir.Dir / "qualsd.sock").string();
    T = std::make_unique<Transport>(S, Spec);
    std::string Error;
    Opened = T->open(Error);
    EXPECT_TRUE(Opened) << Error;
    if (Opened)
      Serve = std::thread([this] { ExitCode = T->serve(); });
  }
  ~LiveServer() { join(); }

  int connect() { return connectUnix(T->boundName()); }

  /// Stops the transport (as a `shutdown` request would) and joins; safe
  /// to call twice.
  void join() {
    if (Serve.joinable()) {
      T->stop();
      Serve.join();
    }
  }

  TempDir Dir;
  Server S;
  std::unique_ptr<Transport> T;
  bool Opened = false;
  std::thread Serve;
  int ExitCode = -1;
};

/// The stdio reference: the same request stream through a fresh server.
std::string stdioReference(const std::string &Requests,
                           ServerConfig Config = {}) {
  Server S(Config);
  std::istringstream In(Requests);
  std::ostringstream Out;
  EXPECT_EQ(S.run(In, Out), 0);
  return Out.str();
}

std::string analyzeLine(int Id, const std::string &Source,
                        bool Delta = false) {
  return "{\"id\":" + std::to_string(Id) + ",\"method\":\"" +
         (Delta ? "analyze-delta" : "analyze") +
         "\",\"params\":{\"source\":\"" + Source + "\",\"name\":\"t" +
         std::to_string(Id % 3) + ".c\"}}\n";
}

} // namespace

TEST(Transport, ParsesListenSpecs) {
  ListenSpec Spec;
  std::string Error;
  ASSERT_TRUE(parseListenSpec("/run/qualsd.sock", Spec, Error));
  EXPECT_EQ(Spec.K, ListenSpec::Kind::Unix);
  EXPECT_EQ(Spec.Path, "/run/qualsd.sock");
  ASSERT_TRUE(parseListenSpec("localhost:8080", Spec, Error));
  EXPECT_EQ(Spec.K, ListenSpec::Kind::Tcp);
  EXPECT_EQ(Spec.Host, "localhost");
  EXPECT_EQ(Spec.Port, 8080);
  ASSERT_TRUE(parseListenSpec(":0", Spec, Error));
  EXPECT_EQ(Spec.K, ListenSpec::Kind::Tcp);
  EXPECT_TRUE(Spec.Host.empty());
  EXPECT_EQ(Spec.Port, 0);
  EXPECT_FALSE(parseListenSpec("", Spec, Error));
  EXPECT_FALSE(parseListenSpec("host:", Spec, Error));
  EXPECT_FALSE(parseListenSpec("host:70000", Spec, Error));
  EXPECT_FALSE(parseListenSpec("host:12x4", Spec, Error));
}

TEST(Transport, MultiClientByteIdenticalToStdio) {
  // N concurrent connections, each streaming M interleaved analyze /
  // analyze-delta requests, all multiplexed onto one -j4 worker pool.
  // Every connection's response bytes must equal a serial stdio run of
  // the same stream -- the tentpole's correctness bar. (Distinct streams
  // share sources across connections on purpose: cross-connection cache
  // hits must not change bytes either.)
  constexpr int Clients = 4, Requests = 6;
  ServerConfig Config;
  Config.Jobs = 4;
  LiveServer L(Config);
  ASSERT_TRUE(L.Opened);

  std::vector<std::string> Streams(Clients), Got(Clients), Want(Clients);
  for (int C = 0; C != Clients; ++C)
    for (int R = 0; R != Requests; ++R)
      Streams[C] += analyzeLine(C * Requests + R,
                                "int v" + std::to_string((C + R) % 5) +
                                    "(int *p) { return *p; }",
                                /*Delta=*/R % 2 == 1);

  std::vector<std::thread> ClientThreads;
  for (int C = 0; C != Clients; ++C)
    ClientThreads.emplace_back([&, C] {
      int Fd = L.connect();
      ASSERT_GE(Fd, 0);
      sendAll(Fd, Streams[C]);
      ::shutdown(Fd, SHUT_WR); // Half-close: EOF ends the session cleanly.
      Got[C] = recvAll(Fd);
      ::close(Fd);
    });
  for (std::thread &T : ClientThreads)
    T.join();
  L.join();
  EXPECT_EQ(L.ExitCode, 0);

  for (int C = 0; C != Clients; ++C) {
    Want[C] = stdioReference(Streams[C], Config);
    EXPECT_EQ(Got[C], Want[C]) << "connection " << C;
  }
}

TEST(Transport, TcpEphemeralPortServesAndReportsBoundName) {
  ServerConfig Config;
  Server S(Config);
  ListenSpec Spec;
  std::string Error;
  ASSERT_TRUE(parseListenSpec("127.0.0.1:0", Spec, Error));
  Transport T(S, Spec);
  ASSERT_TRUE(T.open(Error)) << Error;
  // PORT 0 resolved to a real ephemeral port.
  EXPECT_EQ(T.boundName().rfind("127.0.0.1:", 0), 0u);
  EXPECT_NE(T.boundName(), "127.0.0.1:0");
  std::thread Serve([&T] { EXPECT_EQ(T.serve(), 0); });
  int Fd = connectTcp(T.boundName());
  ASSERT_GE(Fd, 0);
  std::string Req = analyzeLine(1, "int tcp(int *p) { return *p; }");
  sendAll(Fd, Req + "{\"id\":2,\"method\":\"shutdown\"}\n");
  std::string Got = recvAll(Fd);
  ::close(Fd);
  Serve.join();
  EXPECT_EQ(Got, stdioReference(Req + "{\"id\":2,\"method\":\"shutdown\"}\n"));
}

TEST(Transport, InvalidateFromOneConnectionWhileOthersServe) {
  // Barriers are per-connection: an invalidate on B drops shared cache
  // state after barriering B's own in-flight work only. A's requests keep
  // producing byte-identical responses before and after the drop (results
  // are pure functions of content, so either interleaving is sound).
  ServerConfig Config;
  Config.Jobs = 2;
  LiveServer L(Config);
  ASSERT_TRUE(L.Opened);
  int A = L.connect(), B = L.connect();
  ASSERT_GE(A, 0);
  ASSERT_GE(B, 0);

  std::string Req = analyzeLine(1, "int ab(int *p) { return *p; }");
  sendAll(A, Req);
  std::string First = recvLines(A, 1);
  EXPECT_NE(First.find("\"ok\":true"), std::string::npos);

  sendAll(B, "{\"id\":9,\"method\":\"invalidate\"}\n");
  std::string Inv = recvLines(B, 1);
  EXPECT_NE(Inv.find("\"dropped\":1"), std::string::npos);

  sendAll(A, Req); // Recomputed after the drop: bytes must not change.
  EXPECT_EQ(recvLines(A, 1), First);

  ::close(A);
  ::close(B);
}

TEST(Transport, ShutdownOnOneConnectionDrainsTheOthers) {
  ServerConfig Config;
  Config.Jobs = 2;
  LiveServer L(Config);
  ASSERT_TRUE(L.Opened);
  int A = L.connect(), B = L.connect();
  ASSERT_GE(A, 0);
  ASSERT_GE(B, 0);

  // A has served traffic and sits idle mid-connection.
  sendAll(A, analyzeLine(1, "int sd(int *p) { return *p; }"));
  std::string AResp = recvLines(A, 1);
  EXPECT_NE(AResp.find("\"ok\":true"), std::string::npos);

  // B asks the daemon to shut down: B gets its reply, the transport stops
  // accepting and winds A down; A sees clean EOF, nothing truncated.
  sendAll(B, "{\"id\":2,\"method\":\"shutdown\"}\n");
  EXPECT_EQ(recvLines(B, 1), "{\"id\":2,\"ok\":true}\n");

  EXPECT_EQ(recvAll(A), ""); // EOF, no stray bytes.
  ::close(A);
  ::close(B);
  L.join();
  EXPECT_EQ(L.ExitCode, 0);
  EXPECT_TRUE(L.S.shutdownRequested());
  // New connections are refused once serve() returned.
  EXPECT_LT(L.connect(), 0);
}

TEST(Transport, HostileSocketInputNeverKillsTheServer) {
  // The stdio hardening expectations, carried onto the wire: an oversized
  // line and garbage bytes each get an error response on their own
  // connection, and service continues for everyone.
  ServerConfig Config;
  Config.ProtoLim.MaxRequestBytes = 256;
  LiveServer L(Config);
  ASSERT_TRUE(L.Opened);

  {
    int Fd = L.connect();
    ASSERT_GE(Fd, 0);
    sendAll(Fd, std::string(4096, 'x') + "\n");
    std::string R = recvLines(Fd, 1);
    EXPECT_NE(R.find("request exceeds byte limit"), std::string::npos);
    ::close(Fd); // Abrupt close, response possibly unread by the peer.
  }
  {
    int Fd = L.connect();
    ASSERT_GE(Fd, 0);
    sendAll(Fd, "\x01\x02{{{garbage\n");
    std::string R = recvLines(Fd, 1);
    EXPECT_NE(R.find("\"ok\":false"), std::string::npos);
    // Half-closed connection: the write side is done, reads still drain.
    sendAll(Fd, "{\"id\":7,\"method\":\"stats\"}\n");
    ::shutdown(Fd, SHUT_WR);
    std::string Rest = recvAll(Fd);
    EXPECT_NE(Rest.find("{\"id\":7,\"ok\":true"), std::string::npos);
    ::close(Fd);
  }
  // The server is still healthy for a fresh client.
  int Fd = L.connect();
  ASSERT_GE(Fd, 0);
  sendAll(Fd, "{\"id\":8,\"method\":\"stats\"}\n");
  EXPECT_NE(recvLines(Fd, 1).find("{\"id\":8,\"ok\":true"),
            std::string::npos);
  ::close(Fd);
}
